// Package stiu implements the Spatio-temporal Information based Uncertain
// Trajectory Index of Section 5.2.
//
// The temporal part partitions the day into equal intervals and stores, per
// trajectory and interval, a tuple (t.start, t.no, t.pos): the earliest
// timestamp falling in the interval, its ordinal in T, and the bit position
// in T̂ where decoding can resume (partial decompression).
//
// The spatial part partitions the road network with a uniform grid and
// stores, per interval and region, reference tuples
// (fv.id, fv.no, d.pos, ptotal, pmax) and non-reference tuples
// (rv.id, rv.no, ma.pos), exactly the fields Definition 9 and Section 5.2
// prescribe.  ptotal and pmax drive the filtering Lemmas 1-4.
package stiu

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"utcq/internal/core"
	"utcq/internal/par"
	"utcq/internal/roadnet"
)

// Options control the index granularity (Table 7 defaults: a 64×64 grid
// and 30-minute intervals).
type Options struct {
	GridNX, GridNY int
	IntervalDur    int64 // seconds

	// Parallelism bounds the worker pool used by Build: 1 builds strictly
	// serially, N uses N workers, values below 1 use one worker per CPU.
	// The built index is identical across all settings.
	Parallelism int
}

// DefaultOptions returns the paper's default granularity.
func DefaultOptions() Options {
	return Options{GridNX: 64, GridNY: 64, IntervalDur: 1800}
}

// TemporalEntry is one (t.start, t.no, t.pos) tuple.
type TemporalEntry struct {
	Start int64
	No    int32
	Pos   int32 // bit position of the code of timestamp No+1; -1 at the end
}

// RefTuple is the spatial tuple of a reference w.r.t. one region.
type RefTuple struct {
	Traj int32
	Orig int32
	// FV is the final vertex; NoVertex encodes the paper's fv.id = ∞ case
	// (the reference itself never enters the region).
	FV     roadnet.VertexID
	FVNo   int32 // position of the region-entering edge in E(Ref)
	DPos   int32 // bit position of the d.no-th relative distance code
	PTotal float32
	PMax   float32
}

// NonRefTuple is the spatial tuple of a non-reference w.r.t. one region.
type NonRefTuple struct {
	Traj    int32
	Orig    int32
	RefOrig int32
	RV      roadnet.VertexID
	RVNo    int32 // position of RV's edge in E(Nref)
	MaPos   int32 // bit position of the covering factor in ComE
}

// RegionBucket groups the tuples of one (interval, region) pair.
type RegionBucket struct {
	Refs    []RefTuple
	NonRefs []NonRefTuple
}

// Interval is one time partition.  For a built index Regions is populated
// eagerly; for an index decoded from a v1 sidecar the region buckets stay
// as one encoded block until the first query touches the interval.  A v2
// sidecar is finer-grained still: occupancy is a rank bitvector over the
// grid cells, so a query probing an absent region answers straight off
// the (possibly mapped) sidecar bytes, and a present region decodes just
// its own bucket into the decoded cache — untouched buckets never page in.
type Interval struct {
	Trajs   []int32 // trajectories whose time span intersects the interval
	Regions map[roadnet.RegionID]*RegionBucket

	lazy lazyBlock // v1: the whole region block; v2: unused (mu guards Materialize)

	// v2 succinct layout, aliasing the sidecar buffer.
	occ     bitvec // region occupancy over the grid cells
	offs    []byte // (npop+1) × u32 offsets into buckets
	buckets []byte // concatenated per-region bucket encodings, rank order
	decoded []atomic.Pointer[RegionBucket]
	cand    lazyBlock // data = EF candidate-set bytes; force fills Trajs
}

// trSuccinct is the v2 per-trajectory region layout: the same
// bitvector + offset-table shape as an interval, parsed from the
// trajectory-region directory on the trajectory's first When touch.
type trSuccinct struct {
	hdr     lazyBlock // data = the trajectory's blob; force parses the views
	occ     bitvec
	offs    []byte
	buckets []byte
	decoded []atomic.Pointer[RegionBucket]
}

// lazyBlock defers decoding of one sidecar block.  data is nil for built
// indexes (nothing to decode).  The done flag is the lock-free fast path:
// its release store happens after the decoded map is written under mu, so
// an acquire load observing true also observes the map.
type lazyBlock struct {
	done atomic.Bool
	mu   sync.Mutex
	data []byte
	err  error
}

// Index is the StIU index over one archive.
type Index struct {
	Opts Options
	Grid *roadnet.Grid

	// Temporal[j] is trajectory j's interval entries, sorted by Start.
	// For a v2 sidecar the slice is nil until the trajectory's first
	// temporal touch — use TemporalEntries.
	Temporal [][]TemporalEntry

	Intervals map[int]*Interval

	// byTrajRegion[j][re] aggregates, across intervals, the tuple presence
	// used by the when-query and Lemma 1.  nil entries of lazyTR (v1
	// sidecar decode) materialize into it on first touch; v2 sidecars use
	// trV2 instead and only fill the maps under Materialize.
	byTrajRegion []map[roadnet.RegionID]*RegionBucket
	lazyTR       []lazyBlock // parallel to byTrajRegion; v1 sidecars only

	// v2 succinct state: the per-trajectory temporal offset directory and
	// the per-trajectory region layouts.  succinct marks the index as
	// v2-decoded so the query accessors take the rank/select paths.
	succinct     bool
	tempDir      []byte // (numTrajs+1) × u32 offsets into tempBlob
	tempBlob     []byte
	lazyTemporal []lazyBlock // parallel to Temporal; data unused, mu/err/done only
	trDir        []byte      // (numTrajs+1) × u32 offsets into trBlob
	trBlob       []byte
	trV2         []trSuccinct

	// raw retains the sidecar buffer an index was decoded from: the lazy
	// blocks alias it, and EncodeSidecar can return it verbatim instead of
	// re-encoding a partially materialized index.
	raw []byte

	// Succinct-index observability (Stats): how often the rank/select
	// layer answered without materializing anything vs. how many bucket
	// blocks and temporal sections were actually decoded, plus the
	// resident footprint of the succinct structures themselves.
	regionsDecoded atomic.Int64
	prunedNoTouch  atomic.Int64
	temporalForced atomic.Int64
	succinctBytes  atomic.Int64

	// Materialization state for v2 indexes: Materialize rebuilds the eager
	// maps exactly once, guarded here rather than per-block so concurrent
	// callers observe either nothing or the whole rebuild.
	matMu        sync.Mutex
	materialized bool
	matErr       error
}

// IndexStats is a snapshot of the succinct-layer counters.
type IndexStats struct {
	// RegionBlocksDecoded counts (interval,region) and (trajectory,region)
	// buckets materialized from sidecar bytes; RegionPrunedNoTouch counts
	// probes the occupancy bitvectors answered empty without decoding.
	RegionBlocksDecoded int64
	RegionPrunedNoTouch int64
	// TemporalSectionsForced counts per-trajectory temporal sections
	// decoded on first touch (always 0 right after a v2 open).
	TemporalSectionsForced int64
	// SuccinctBytes is the static footprint of the rank/select directories
	// (bitvector words + superblocks + offset tables); 0 unless the index
	// was decoded from a v2 sidecar.
	SuccinctBytes int64
}

// Stats returns the succinct-layer counters.  Safe to call concurrently
// with queries; built and v1-decoded indexes report zeros.
func (ix *Index) Stats() IndexStats {
	return IndexStats{
		RegionBlocksDecoded:    ix.regionsDecoded.Load(),
		RegionPrunedNoTouch:    ix.prunedNoTouch.Load(),
		TemporalSectionsForced: ix.temporalForced.Load(),
		SuccinctBytes:          ix.succinctBytes.Load(),
	}
}

// IntervalOf returns the time-partition id of t.
func (ix *Index) IntervalOf(t int64) int { return int(t / ix.Opts.IntervalDur) }

// TemporalEntries returns trajectory j's interval entries, decoding them
// from a v2 sidecar's temporal section on first touch.  Built and
// v1-decoded indexes return the eager slice; warm calls are a single
// atomic load and never allocate.
func (ix *Index) TemporalEntries(j int) ([]TemporalEntry, error) {
	if ix.lazyTemporal != nil {
		lz := &ix.lazyTemporal[j]
		if !lz.done.Load() {
			if err := ix.forceTemporal(j); err != nil {
				return nil, err
			}
		} else if lz.err != nil {
			return nil, lz.err
		}
	}
	return ix.Temporal[j], nil
}

// forceTemporal decodes trajectory j's temporal section from the v2
// offset directory.
func (ix *Index) forceTemporal(j int) error {
	lz := &ix.lazyTemporal[j]
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.done.Load() {
		return lz.err
	}
	lo := int(binary.LittleEndian.Uint32(ix.tempDir[4*j:]))
	hi := int(binary.LittleEndian.Uint32(ix.tempDir[4*j+4:]))
	if lo > hi || hi > len(ix.tempBlob) {
		lz.err = fmt.Errorf("stiu: temporal directory [%d,%d) overflows blob of %d bytes", lo, hi, len(ix.tempBlob))
	} else {
		r := &sidecarReader{data: ix.tempBlob[lo:hi:hi]}
		entries, err := decodeTemporalEntries(r)
		if err == nil && r.remaining() != 0 {
			err = fmt.Errorf("temporal section has %d trailing bytes", r.remaining())
		}
		if err != nil {
			lz.err = fmt.Errorf("stiu: sidecar temporal[%d]: %w", j, err)
		} else {
			ix.Temporal[j] = entries
			ix.temporalForced.Add(1)
		}
	}
	lz.done.Store(true)
	return lz.err
}

// FindTemporal returns trajectory j's entry with the greatest Start <= t
// (the binary search of Example 3).
func (ix *Index) FindTemporal(j int, t int64) (TemporalEntry, bool) {
	entries, err := ix.TemporalEntries(j)
	if err != nil {
		return TemporalEntry{}, false
	}
	lo := sort.Search(len(entries), func(i int) bool { return entries[i].Start > t })
	if lo == 0 {
		return TemporalEntry{}, false
	}
	return entries[lo-1], true
}

// Buckets returns the bucket of (interval, region), or nil.  The only
// error source is a corrupt lazily-decoded sidecar block; built indexes
// never fail.  Under a v2 sidecar an absent region answers from the
// occupancy bitvector without decoding anything, and a present region
// decodes only its own bucket (cached behind an atomic pointer).
func (ix *Index) Buckets(interval int, re roadnet.RegionID) (*RegionBucket, error) {
	iv := ix.Intervals[interval]
	if iv == nil {
		return nil, nil
	}
	if ix.succinct {
		if int(re) >= iv.occ.nbits || !iv.occ.get(int(re)) {
			ix.prunedNoTouch.Add(1)
			return nil, nil
		}
		k := iv.occ.rank1(int(re))
		if b := iv.decoded[k].Load(); b != nil {
			return b, nil
		}
		return ix.decodeBucketAt(iv.offs, iv.buckets, iv.decoded, k)
	}
	if iv.lazy.data != nil && !iv.lazy.done.Load() {
		if err := iv.force(); err != nil {
			return nil, err
		}
	}
	return iv.Regions[re], nil
}

// decodeBucketAt materializes the k-th occupied bucket of a v2 layout and
// publishes it.  Concurrent decoders may duplicate the work; both results
// are identical and the last store wins.
func (ix *Index) decodeBucketAt(offs, blob []byte, cache []atomic.Pointer[RegionBucket], k int) (*RegionBucket, error) {
	lo := int(binary.LittleEndian.Uint32(offs[4*k:]))
	hi := int(binary.LittleEndian.Uint32(offs[4*k+4:]))
	if lo > hi || hi > len(blob) {
		return nil, fmt.Errorf("stiu: bucket offsets [%d,%d) overflow blob of %d bytes", lo, hi, len(blob))
	}
	b, err := decodeBucket(blob[lo:hi:hi])
	if err != nil {
		return nil, fmt.Errorf("stiu: bucket %d: %w", k, err)
	}
	cache[k].Store(b)
	ix.regionsDecoded.Add(1)
	return b, nil
}

// force materializes the interval's region map from its sidecar block.
func (iv *Interval) force() error {
	if iv.lazy.data == nil || iv.lazy.done.Load() {
		return iv.lazy.err
	}
	iv.lazy.mu.Lock()
	if !iv.lazy.done.Load() {
		iv.Regions, iv.lazy.err = decodeRegionBlock(iv.lazy.data)
		iv.lazy.done.Store(true)
	}
	iv.lazy.mu.Unlock()
	return iv.lazy.err
}

// TrajRegion returns the aggregated bucket of trajectory j and region re.
// Under a v2 sidecar the trajectory's bitvector answers absent regions
// without decoding, giving the When path's Lemma-1 gate a zero-cost miss.
func (ix *Index) TrajRegion(j int, re roadnet.RegionID) (*RegionBucket, error) {
	if ix.trV2 != nil {
		tr := &ix.trV2[j]
		if !tr.hdr.done.Load() {
			if err := ix.forceTRHeader(j); err != nil {
				return nil, err
			}
		} else if tr.hdr.err != nil {
			return nil, tr.hdr.err
		}
		if int(re) >= tr.occ.nbits || !tr.occ.get(int(re)) {
			ix.prunedNoTouch.Add(1)
			return nil, nil
		}
		k := tr.occ.rank1(int(re))
		if b := tr.decoded[k].Load(); b != nil {
			return b, nil
		}
		return ix.decodeBucketAt(tr.offs, tr.buckets, tr.decoded, k)
	}
	if len(ix.lazyTR) > 0 {
		lz := &ix.lazyTR[j]
		if lz.data != nil && !lz.done.Load() {
			if err := ix.forceTR(j); err != nil {
				return nil, err
			}
		} else if lz.err != nil {
			return nil, lz.err
		}
	}
	return ix.byTrajRegion[j][re], nil
}

// forceTRHeader parses trajectory j's v2 region layout (bitvector, offset
// table, bucket blob) from its slot in the trajectory-region directory.
// Slicing only — no bucket decodes.
func (ix *Index) forceTRHeader(j int) error {
	tr := &ix.trV2[j]
	tr.hdr.mu.Lock()
	defer tr.hdr.mu.Unlock()
	if tr.hdr.done.Load() {
		return tr.hdr.err
	}
	lo := int(binary.LittleEndian.Uint32(ix.trDirAt(j)))
	hi := int(binary.LittleEndian.Uint32(ix.trDirAt(j + 1)))
	if lo > hi || hi > len(ix.trBlob) {
		tr.hdr.err = fmt.Errorf("stiu: trajRegion directory [%d,%d) overflows blob of %d bytes", lo, hi, len(ix.trBlob))
	} else {
		r := &sidecarReader{data: ix.trBlob[lo:hi:hi]}
		occ, offs, blob, err := r.bucketLayout(ix.Opts.GridNX * ix.Opts.GridNY)
		if err == nil && r.remaining() != 0 {
			err = fmt.Errorf("%d trailing bytes", r.remaining())
		}
		if err != nil {
			tr.hdr.err = fmt.Errorf("stiu: sidecar trajRegion[%d]: %w", j, err)
		} else {
			tr.occ, tr.offs, tr.buckets = occ, offs, blob
			tr.decoded = make([]atomic.Pointer[RegionBucket], occ.npop)
			ix.succinctBytes.Add(int64(occ.sizeBytes() + len(offs)))
		}
	}
	tr.hdr.done.Store(true)
	return tr.hdr.err
}

func (ix *Index) trDirAt(j int) []byte { return ix.trDir[4*j:] }

// forceTR materializes trajectory j's region map from its sidecar block.
func (ix *Index) forceTR(j int) error {
	lz := &ix.lazyTR[j]
	if lz.data == nil || lz.done.Load() {
		return lz.err
	}
	lz.mu.Lock()
	if !lz.done.Load() {
		ix.byTrajRegion[j], lz.err = decodeRegionBlock(lz.data)
		lz.done.Store(true)
	}
	lz.mu.Unlock()
	return lz.err
}

// Candidates returns the trajectories active in the interval, decoding a
// v2 sidecar's Elias–Fano candidate set on the interval's first touch.
func (ix *Index) Candidates(interval int) ([]int32, error) {
	iv := ix.Intervals[interval]
	if iv == nil {
		return nil, nil
	}
	if iv.cand.data != nil && !iv.cand.done.Load() {
		if err := ix.forceCandidates(interval, iv); err != nil {
			return nil, err
		}
	} else if iv.cand.err != nil {
		return nil, iv.cand.err
	}
	return iv.Trajs, nil
}

func (ix *Index) forceCandidates(interval int, iv *Interval) error {
	iv.cand.mu.Lock()
	defer iv.cand.mu.Unlock()
	if iv.cand.done.Load() {
		return iv.cand.err
	}
	r := &sidecarReader{data: iv.cand.data}
	trajs, err := r.efSet(len(ix.Temporal))
	if err == nil && r.remaining() != 0 {
		err = fmt.Errorf("%d trailing bytes", r.remaining())
	}
	if err != nil {
		iv.cand.err = fmt.Errorf("stiu: sidecar interval %d trajs: %w", interval, err)
	} else {
		iv.Trajs = trajs
	}
	iv.cand.done.Store(true)
	return iv.cand.err
}

// CandidateTrajs returns the trajectories active in the interval.
// Decode errors (unreachable behind the sidecar CRC) yield nil; callers
// that need them use Candidates.
func (ix *Index) CandidateTrajs(interval int) []int32 {
	trajs, _ := ix.Candidates(interval)
	return trajs
}

// Tuple bit widths used for index size accounting (Fig 9): temporal
// entries store a 17-bit seconds-of-day start, a 12-bit ordinal and a
// 32-bit stream position; spatial tuples store vertex ids, 12-bit
// ordinals, 32-bit positions and 16-bit probability summaries.
const (
	startBits = 17
	noBits    = 12
	posBits   = 32
	probBits  = 16
)

// TemporalSizeBits returns the temporal index size.  Lazy sections are
// forced first so the accounting covers untouched trajectories.
func (ix *Index) TemporalSizeBits() int64 {
	n := int64(0)
	for j := range ix.Temporal {
		entries, err := ix.TemporalEntries(j)
		if err != nil {
			return 0
		}
		n += int64(len(entries)) * (startBits + noBits + posBits)
	}
	return n
}

// SpatialSizeBits returns the spatial index size, given the vertex id
// width of the archive.  Sidecar-backed indexes are fully materialized
// first so the accounting covers untouched intervals.
func (ix *Index) SpatialSizeBits(vertexBits int) int64 {
	if err := ix.Materialize(); err != nil {
		return 0
	}
	n := int64(0)
	for _, iv := range ix.Intervals {
		for _, b := range iv.Regions {
			n += int64(len(b.Refs)) * int64(vertexBits+1+noBits+posBits+2*probBits)
			n += int64(len(b.NonRefs)) * int64(vertexBits+noBits+posBits)
		}
	}
	return n
}

// Build constructs the index from a compressed archive.  Building happens
// at compression time (the paper builds StIU "during compression"), so it
// may decode records freely.
//
// Construction has two phases.  The walk phase decodes each trajectory's
// instance traversals and produces a per-trajectory tuple batch; walks are
// independent, so they run on a bounded worker pool (Options.Parallelism).
// The merge phase folds the batches into the grid/interval cells, sharded
// by interval id so shards never touch the same cell.  Both phases apply
// batches in trajectory order, so the index is identical to a serial build.
func Build(a *core.Archive, opts Options) (*Index, error) {
	if opts.GridNX < 1 || opts.GridNY < 1 || opts.IntervalDur < 1 {
		return nil, fmt.Errorf("stiu: invalid options %+v", opts)
	}
	ix := &Index{
		Opts:         opts,
		Grid:         roadnet.NewGrid(a.Graph, opts.GridNX, opts.GridNY),
		Temporal:     make([][]TemporalEntry, len(a.Trajs)),
		Intervals:    make(map[int]*Interval),
		byTrajRegion: make([]map[roadnet.RegionID]*RegionBucket, len(a.Trajs)),
	}
	workers := par.Workers(opts.Parallelism)

	// Walk phase: per-trajectory batches, plus the per-trajectory index
	// parts (temporal entries, trajectory-region buckets) that no other
	// worker touches.
	batches := make([]*trajBatch, len(a.Trajs))
	err := par.Do(workers, len(a.Trajs), func(j int) error {
		b, err := ix.walkTrajectory(a, j)
		if err != nil {
			return fmt.Errorf("stiu: trajectory %d: %w", j, err)
		}
		batches[j] = b
		ix.Temporal[j] = b.temporal
		ix.byTrajRegion[j] = b.trajRegion
		return nil
	})
	if err != nil {
		return nil, err
	}

	ix.mergeBatches(batches, workers)

	// Sort interval trajectory lists and deduplicate.
	for _, iv := range ix.Intervals {
		sort.Slice(iv.Trajs, func(x, y int) bool { return iv.Trajs[x] < iv.Trajs[y] })
		iv.Trajs = dedupInt32(iv.Trajs)
	}
	return ix, nil
}

// mergeBatches folds the walk batches into the interval map.  Each shard
// owns the intervals with id ≡ shard (mod shards) and applies every batch
// in trajectory order, so no two shards write the same cell and the tuple
// order within each cell matches a serial build exactly.
func (ix *Index) mergeBatches(batches []*trajBatch, shards int) {
	if shards < 1 {
		shards = 1
	}
	mod := func(iv int) int { return ((iv % shards) + shards) % shards }
	parts := make([]map[int]*Interval, shards)
	// Shard counts are small; par.Do with error-free work never fails.
	_ = par.Do(shards, shards, func(s int) error {
		m := make(map[int]*Interval)
		get := func(id int) *Interval {
			iv := m[id]
			if iv == nil {
				iv = &Interval{Regions: make(map[roadnet.RegionID]*RegionBucket)}
				m[id] = iv
			}
			return iv
		}
		for j, b := range batches {
			for iv := b.firstIv; iv <= b.lastIv; iv++ {
				if mod(iv) != s {
					continue
				}
				in := get(iv)
				in.Trajs = append(in.Trajs, int32(j))
			}
			for _, e := range b.emits {
				if mod(e.interval) != s {
					continue
				}
				bk := get(e.interval).bucket(e.re)
				if e.isRef {
					bk.Refs = append(bk.Refs, e.ref)
				} else {
					bk.NonRefs = append(bk.NonRefs, e.nonRef)
				}
			}
		}
		parts[s] = m
		return nil
	})
	for _, m := range parts {
		for id, iv := range m {
			ix.Intervals[id] = iv
		}
	}
}

func (iv *Interval) bucket(re roadnet.RegionID) *RegionBucket {
	b := iv.Regions[re]
	if b == nil {
		b = &RegionBucket{}
		iv.Regions[re] = b
	}
	return b
}

func dedupInt32(xs []int32) []int32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// FindTemporalByNo returns trajectory j's entry with the greatest No <= k,
// used to resume timestamp decoding near point index k.
func (ix *Index) FindTemporalByNo(j, k int) (TemporalEntry, bool) {
	entries, err := ix.TemporalEntries(j)
	if err != nil {
		return TemporalEntry{}, false
	}
	lo := sort.Search(len(entries), func(i int) bool { return int(entries[i].No) > k })
	if lo == 0 {
		return TemporalEntry{}, false
	}
	return entries[lo-1], true
}
