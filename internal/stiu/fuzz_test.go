package stiu

import (
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/roadnet"
)

// FuzzSidecarDecode throws arbitrary bytes at the sidecar decoder —
// seeded with real v1 and v2 encodings so mutations explore the rank
// directories, offset tables and lazy temporal sections rather than dying
// at the header.  Whatever decodes must also survive full materialization
// and the lazy point accessors without panicking; errors are fine.
func FuzzSidecarDecode(f *testing.F) {
	opts := Options{GridNX: 8, GridNY: 8, IntervalDur: 1800}
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 12, 12
	ds, err := gen.Build(p, 12, 7)
	if err != nil {
		f.Fatal(err)
	}
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(p.Ts))
	if err != nil {
		f.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		f.Fatal(err)
	}
	ix, err := Build(a, opts)
	if err != nil {
		f.Fatal(err)
	}
	const archiveSize = 7
	v2, err := ix.EncodeSidecar(archiveSize)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := ix.EncodeSidecarV1(archiveSize)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)
	f.Add(v1)
	f.Add(v2[:len(v2)/2])
	f.Add([]byte("UTCI"))

	numTrajs := len(a.Trajs)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeSidecar(data, a.Graph, numTrajs, archiveSize, opts)
		if err != nil {
			return
		}
		// Lazy accessors on hostile layouts: bounds failures must surface
		// as errors, never as panics or out-of-range ranks.
		for j := 0; j < numTrajs; j++ {
			_, _ = dec.TemporalEntries(j)
		}
		for id := range dec.Intervals {
			_, _ = dec.Candidates(id)
			for re := 0; re < opts.GridNX*opts.GridNY; re += 5 {
				_, _ = dec.Buckets(id, roadnet.RegionID(re))
			}
		}
		for j := 0; j < numTrajs; j++ {
			for re := 0; re < opts.GridNX*opts.GridNY; re += 7 {
				_, _ = dec.TrajRegion(j, roadnet.RegionID(re))
			}
		}
		_ = dec.Materialize()
	})
}
