package stiu

import (
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/paperfix"
	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

func buildFixtureIndex(t *testing.T, opts Options) (*paperfix.Fixture, *core.Archive, *Index) {
	t.Helper()
	fx := paperfix.MustNew()
	c, err := core.NewCompressor(fx.Graph, core.DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fx, a, ix
}

// TestTemporalEntries mirrors Example 3: with 15-minute partitions, the
// tuple whose t.start is closest below 5:21:25 has t.no = 3 (timestamp
// 5:15:26).
func TestTemporalEntries(t *testing.T) {
	_, a, ix := buildFixtureIndex(t, Options{GridNX: 8, GridNY: 8, IntervalDur: 900})
	entry, ok := ix.FindTemporal(0, 5*3600+21*60+25)
	if !ok {
		t.Fatal("no temporal entry found")
	}
	if entry.No != 3 {
		t.Errorf("t.no = %d, want 3", entry.No)
	}
	if entry.Start != 5*3600+15*60+26 {
		t.Errorf("t.start = %d, want 5:15:26", entry.Start)
	}
	// The stored position must let a cursor resume: next timestamp is
	// 5:19:25.
	curs, err := a.Trajs[0].TimeCursorAt(a.Opts.Ts, int(entry.Pos), entry.Start, int(entry.No))
	if err != nil {
		t.Fatal(err)
	}
	if !curs.Next() {
		t.Fatal("cursor cannot advance")
	}
	if curs.T() != 5*3600+19*60+25 {
		t.Errorf("resumed timestamp = %d, want 5:19:25", curs.T())
	}
	// Query before the trajectory start finds nothing.
	if _, ok := ix.FindTemporal(0, 100); ok {
		t.Error("entry found before trajectory start")
	}
}

func TestSpatialTuples(t *testing.T) {
	fx, _, ix := buildFixtureIndex(t, Options{GridNX: 8, GridNY: 8, IntervalDur: 1800})
	// Collect all regions with tuples for trajectory 0.
	total := 0
	var refTuples []RefTuple
	for _, iv := range ix.Intervals {
		for _, b := range iv.Regions {
			refTuples = append(refTuples, b.Refs...)
			total += len(b.Refs) + len(b.NonRefs)
		}
	}
	if total == 0 {
		t.Fatal("no spatial tuples built")
	}
	// Reference tuples of the group (instance 0 is the reference): ptotal
	// for regions all three instances traverse must be ~1.
	g := fx.Graph
	startRe := ix.Grid.RegionOfPosition(g, roadnet.Position{Edge: fx.Edge("v1", "v2"), NDist: 0})
	found := false
	for _, rt := range refTuples {
		if rt.Orig != 0 {
			t.Errorf("unexpected reference group %d", rt.Orig)
		}
		re := startRe
		_ = re
		if rt.FV == fx.IDs["v1"] && rt.FVNo == 0 {
			found = true
			if rt.PTotal < 0.95 || rt.PTotal > 1.05 {
				t.Errorf("start-region ptotal = %g, want ~1", rt.PTotal)
			}
		}
	}
	if !found {
		t.Error("no (SV, 0, 0) tuple for the start region")
	}
	// Every reference tuple's pmax must be below the group's total and
	// equal the best non-reference probability when present.
	for _, rt := range refTuples {
		if rt.PMax > rt.PTotal+1e-6 {
			t.Errorf("pmax %g > ptotal %g", rt.PMax, rt.PTotal)
		}
	}
}

func TestTrajRegionAggregation(t *testing.T) {
	fx, _, ix := buildFixtureIndex(t, Options{GridNX: 8, GridNY: 8, IntervalDur: 1800})
	// The region of v9 (only Tu13 goes there, p = 0.05).
	re9 := ix.Grid.CellOf(6400, -790)
	b, err := ix.TrajRegion(0, re9)
	if err != nil {
		t.Fatal(err)
	}
	if b == nil {
		t.Fatalf("no tuples for the v9 region")
	}
	var maxPMax float32
	for _, rt := range b.Refs {
		if rt.PMax > maxPMax {
			maxPMax = rt.PMax
		}
	}
	// Only the non-reference Tu13 (p=0.05) enters re9: Lemma 1 uses this
	// pmax to skip decompression for alpha > 0.05.
	if maxPMax <= 0 || maxPMax > 0.06 {
		t.Errorf("pmax at v9 region = %g, want ~0.05", maxPMax)
	}
	_ = fx
}

func TestIndexSizes(t *testing.T) {
	_, a, ix := buildFixtureIndex(t, Options{GridNX: 8, GridNY: 8, IntervalDur: 1800})
	if ix.TemporalSizeBits() <= 0 {
		t.Error("temporal size is zero")
	}
	if ix.SpatialSizeBits(a.VertexBits) <= 0 {
		t.Error("spatial size is zero")
	}
	// Finer grids create more tuples.
	_, a2, ix2 := buildFixtureIndex(t, Options{GridNX: 32, GridNY: 32, IntervalDur: 1800})
	if ix2.SpatialSizeBits(a2.VertexBits) < ix.SpatialSizeBits(a.VertexBits) {
		t.Error("finer grid produced a smaller spatial index")
	}
}

func TestBuildOnGeneratedDataset(t *testing.T) {
	p := gen.HZ()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(a, Options{GridNX: 16, GridNY: 16, IntervalDur: 1800})
	if err != nil {
		t.Fatal(err)
	}
	// Every trajectory must have temporal entries covering its start.
	for j, u := range ds.Trajectories {
		e, ok := ix.FindTemporal(j, u.T[0])
		if !ok || e.No != 0 || e.Start != u.T[0] {
			t.Fatalf("traj %d: first temporal entry wrong: %+v ok=%v", j, e, ok)
		}
		mid := u.T[len(u.T)/2]
		e, ok = ix.FindTemporal(j, mid)
		if !ok || e.Start > mid {
			t.Fatalf("traj %d: mid temporal entry wrong", j)
		}
		// The trajectory must appear in its intervals' candidate lists.
		iv := ix.IntervalOf(u.T[0])
		foundSelf := false
		for _, cj := range ix.CandidateTrajs(iv) {
			if int(cj) == j {
				foundSelf = true
			}
		}
		if !foundSelf {
			t.Fatalf("traj %d missing from interval %d", j, iv)
		}
	}
	// ptotal consistency: every group tuple's ptotal must not exceed the
	// trajectory's total probability (~1).
	for _, iv := range ix.Intervals {
		for _, b := range iv.Regions {
			for _, rt := range b.Refs {
				if rt.PTotal > 1.05 {
					t.Errorf("ptotal %g > 1", rt.PTotal)
				}
				if rt.PMax > rt.PTotal+1e-6 {
					t.Errorf("pmax %g > ptotal %g", rt.PMax, rt.PTotal)
				}
			}
		}
	}
}
