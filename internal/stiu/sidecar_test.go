package stiu

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/roadnet"
)

func buildGeneratedIndex(t *testing.T, opts Options) (*core.Archive, *Index) {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, ix
}

// requireSameIndex compares the query-visible state of two indexes:
// temporal entries, interval candidate sets and fully materialized region
// buckets.  It avoids DeepEqual on the Index struct itself, whose lazy
// bookkeeping legitimately differs between built and decoded instances.
func requireSameIndex(t *testing.T, want, got *Index) {
	t.Helper()
	if err := want.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := got.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Temporal, got.Temporal) {
		t.Fatal("temporal entries differ")
	}
	if len(want.Intervals) != len(got.Intervals) {
		t.Fatalf("interval count %d != %d", len(got.Intervals), len(want.Intervals))
	}
	for id, wiv := range want.Intervals {
		giv := got.Intervals[id]
		if giv == nil {
			t.Fatalf("interval %d missing after decode", id)
		}
		if !reflect.DeepEqual(wiv.Trajs, giv.Trajs) {
			t.Fatalf("interval %d candidate trajs differ", id)
		}
		if !reflect.DeepEqual(wiv.Regions, giv.Regions) {
			t.Fatalf("interval %d region buckets differ", id)
		}
	}
	if !reflect.DeepEqual(want.byTrajRegion, got.byTrajRegion) {
		t.Fatal("trajectory-region buckets differ")
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	opts := Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	const archiveSize = 123456
	enc, err := ix.EncodeSidecar(archiveSize)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSidecar(enc, a.Graph, len(a.Trajs), archiveSize, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameIndex(t, ix, dec)

	// A decoded index re-encodes byte-identically (it returns its buffer).
	enc2, err := dec.EncodeSidecar(archiveSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding a decoded sidecar is not byte-stable")
	}
	// Encoding the built index twice is deterministic.
	enc3, err := ix.EncodeSidecar(archiveSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc3) {
		t.Fatal("encoding is nondeterministic")
	}
}

func TestSidecarLazyAccess(t *testing.T) {
	opts := Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	enc, err := ix.EncodeSidecar(1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSidecar(enc, a.Graph, len(a.Trajs), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Point lookups materialize blocks on demand and agree with the built
	// index for every (interval, region) and (traj, region) pair.
	for id, iv := range ix.Intervals {
		for re, want := range iv.Regions {
			got, err := dec.Buckets(id, re)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("bucket (%d,%d) differs", id, re)
			}
		}
	}
	for j := range ix.byTrajRegion {
		for re, want := range ix.byTrajRegion[j] {
			got, err := dec.TrajRegion(j, re)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trajRegion (%d,%d) differs", j, re)
			}
		}
	}
}

func TestSidecarRejectsMismatch(t *testing.T) {
	opts := Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	enc, err := ix.EncodeSidecar(999)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  func() (*Index, error)
	}{
		{"wrong archive size", func() (*Index, error) {
			return DecodeSidecar(enc, a.Graph, len(a.Trajs), 1000, opts)
		}},
		{"wrong traj count", func() (*Index, error) {
			return DecodeSidecar(enc, a.Graph, len(a.Trajs)+1, 999, opts)
		}},
		{"wrong grid", func() (*Index, error) {
			o := opts
			o.GridNX = 8
			return DecodeSidecar(enc, a.Graph, len(a.Trajs), 999, o)
		}},
		{"wrong interval duration", func() (*Index, error) {
			o := opts
			o.IntervalDur = 900
			return DecodeSidecar(enc, a.Graph, len(a.Trajs), 999, o)
		}},
	}
	for _, tc := range cases {
		if _, err := tc.run(); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}

// TestSidecarCorruptionIsAnError truncates and bit-flips the encoding at
// every offset: decode (plus full materialization when decode succeeds)
// must return an error or a different index, never panic.
func TestSidecarCorruptionIsAnError(t *testing.T) {
	opts := Options{GridNX: 8, GridNY: 8, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	enc, err := ix.EncodeSidecar(7)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeSidecar(enc[:cut], a.Graph, len(a.Trajs), 7, opts); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	for off := 0; off < len(enc); off += 11 {
		mut := bytes.Clone(enc)
		mut[off] ^= 0x40
		dec, err := DecodeSidecar(mut, a.Graph, len(a.Trajs), 7, opts)
		if err != nil {
			continue
		}
		_ = dec.Materialize() // must not panic; errors are acceptable
	}
}

func TestEFSetRoundTrip(t *testing.T) {
	cases := [][]int32{
		nil,
		{0},
		{5},
		{0, 1, 2, 3, 4},
		{0, 100},
		{3, 17, 17 + 64, 1000, 4095, 4096, 1 << 20},
	}
	for _, vals := range cases {
		enc := appendEFSet(nil, vals)
		r := &sidecarReader{data: enc}
		got, err := r.efSet(1 << 21)
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if r.remaining() != 0 {
			t.Fatalf("%v: %d trailing bytes", vals, r.remaining())
		}
		if len(vals) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(vals, got) {
			t.Fatalf("round trip %v -> %v", vals, got)
		}
	}
}

// TestSidecarV1RoundTrip pins the legacy layout: a v1 encoding (as every
// pre-v2 store wrote) still decodes to the same index, and its header
// carries version 1.
func TestSidecarV1RoundTrip(t *testing.T) {
	opts := Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	const archiveSize = 123456
	enc, err := ix.EncodeSidecarV1(archiveSize)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(enc[4:]); v != 1 {
		t.Fatalf("v1 header version = %d", v)
	}
	dec, err := DecodeSidecar(enc, a.Graph, len(a.Trajs), archiveSize, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dec.succinct {
		t.Fatal("v1 decode took the succinct path")
	}
	requireSameIndex(t, ix, dec)

	// The default encoder writes v2.
	enc2, err := ix.EncodeSidecar(archiveSize)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(enc2[4:]); v != 2 {
		t.Fatalf("default header version = %d", v)
	}
}

// TestSidecarV1CorruptionIsAnError mirrors the main corruption sweep for
// the legacy decoder, which must stay robust as long as v1 files load.
func TestSidecarV1CorruptionIsAnError(t *testing.T) {
	opts := Options{GridNX: 8, GridNY: 8, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	enc, err := ix.EncodeSidecarV1(7)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeSidecar(enc[:cut], a.Graph, len(a.Trajs), 7, opts); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	for off := 0; off < len(enc); off += 11 {
		mut := bytes.Clone(enc)
		mut[off] ^= 0x40
		dec, err := DecodeSidecar(mut, a.Graph, len(a.Trajs), 7, opts)
		if err != nil {
			continue
		}
		_ = dec.Materialize() // must not panic; errors are acceptable
	}
}

// TestSidecarV2LazyTemporal pins the tentpole behavior: decoding a v2
// sidecar touches no temporal section, each section decodes exactly once
// on first touch, and the entries match the built index.
func TestSidecarV2LazyTemporal(t *testing.T) {
	opts := Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	enc, err := ix.EncodeSidecar(1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSidecar(enc, a.Graph, len(a.Trajs), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Stats().TemporalSectionsForced; got != 0 {
		t.Fatalf("open forced %d temporal sections, want 0", got)
	}
	for j := range ix.Temporal {
		if dec.Temporal[j] != nil {
			t.Fatalf("Temporal[%d] eagerly decoded", j)
		}
		got, err := dec.TemporalEntries(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ix.Temporal[j], got) {
			t.Fatalf("temporal entries for trajectory %d differ", j)
		}
	}
	if got := dec.Stats().TemporalSectionsForced; got != int64(len(ix.Temporal)) {
		t.Fatalf("forced %d sections, want %d", got, len(ix.Temporal))
	}
	// Warm touches are free: the counter stays put.
	if _, err := dec.TemporalEntries(0); err != nil {
		t.Fatal(err)
	}
	if got := dec.Stats().TemporalSectionsForced; got != int64(len(ix.Temporal)) {
		t.Fatalf("warm touch re-forced a section (%d)", got)
	}
}

// TestSidecarV2SuccinctStats pins the observability counters: pruning an
// unoccupied (interval, region) pair is counted and decodes nothing,
// hitting an occupied pair decodes exactly one block, and the succinct
// directories report a nonzero resident footprint.
func TestSidecarV2SuccinctStats(t *testing.T) {
	opts := Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	a, ix := buildGeneratedIndex(t, opts)
	enc, err := ix.EncodeSidecar(1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSidecar(enc, a.Graph, len(a.Trajs), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats().SuccinctBytes == 0 {
		t.Fatal("SuccinctBytes = 0 after v2 decode")
	}

	// Find an occupied pair and an unoccupied region in the same interval.
	var id int
	var hit, miss roadnet.RegionID = -1, -1
	for iid, iv := range ix.Intervals {
		for re := roadnet.RegionID(0); int(re) < opts.GridNX*opts.GridNY; re++ {
			if _, ok := iv.Regions[re]; ok && hit < 0 {
				id, hit = iid, re
			} else if !ok && miss < 0 {
				miss = re
			}
		}
		if hit >= 0 && miss >= 0 {
			break
		}
	}
	if hit < 0 || miss < 0 {
		t.Skip("degenerate fixture: no (hit, miss) pair")
	}

	if b, err := dec.Buckets(id, miss); err != nil || b != nil {
		t.Fatalf("Buckets(miss) = %v, %v", b, err)
	}
	st := dec.Stats()
	if st.RegionPrunedNoTouch != 1 || st.RegionBlocksDecoded != 0 {
		t.Fatalf("after miss: pruned=%d decoded=%d", st.RegionPrunedNoTouch, st.RegionBlocksDecoded)
	}
	if b, err := dec.Buckets(id, hit); err != nil || b == nil {
		t.Fatalf("Buckets(hit) = %v, %v", b, err)
	}
	st = dec.Stats()
	if st.RegionBlocksDecoded != 1 {
		t.Fatalf("after hit: decoded=%d, want 1", st.RegionBlocksDecoded)
	}
	// Warm re-read comes from the pointer cache.
	if _, err := dec.Buckets(id, hit); err != nil {
		t.Fatal(err)
	}
	if st := dec.Stats(); st.RegionBlocksDecoded != 1 {
		t.Fatalf("warm hit re-decoded (%d)", st.RegionBlocksDecoded)
	}
}
