// UTCI v2 sidecar codec (FORMAT.md §5): the succinct layout that answers
// Lemma-1/2 pruning straight off the mapped bytes.
//
// Where v1 decoded every trajectory's temporal entries at open and kept
// each interval's region tuples as one monolithic lazy block, v2 stores
//
//   - a fixed-width u32 offset directory over per-trajectory temporal
//     sections, so opening a shard decodes no temporal entry at all and
//     trajectory j's section decodes on its first When/FindTemporal touch;
//   - per interval, a rank bitvector over the grid's region occupancy
//     plus a u32 offset table into individually encoded region buckets,
//     so a Range probe of an absent (interval, region) pair is a bit test
//     and a present pair decodes only its own bucket;
//   - the same bitvector + offset-table shape per trajectory for the
//     When path's Lemma-1 gate, behind a per-trajectory directory.
//
// All directories are fixed-width and verified at open (monotone span
// checks happen lazily per section), so DecodeSidecar's work is O(header
// + interval count), independent of temporal-entry and tuple counts.
package stiu

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"utcq/internal/roadnet"
)

// encodeSidecarV2 serializes a materialized index in the v2 layout.
func (ix *Index) encodeSidecarV2(archiveSize int64) ([]byte, error) {
	buf := make([]byte, 0, 1<<16)
	buf = ix.appendSidecarHeader(buf, sidecarVersion, archiveSize)
	nbits := ix.Opts.GridNX * ix.Opts.GridNY

	// Temporal section: (numTrajs+1) u32 offsets, then the blobs.
	var err error
	if buf, err = appendDirectory(buf, len(ix.Temporal), func(blob []byte, j int) ([]byte, error) {
		return appendTemporalEntries(blob, ix.Temporal[j]), nil
	}); err != nil {
		return nil, fmt.Errorf("stiu: temporal section: %w", err)
	}

	// Interval section, ascending id order.
	ids := ix.sortedIntervalIDs()
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prevID := 0
	for i, id := range ids {
		if i == 0 {
			buf = binary.AppendVarint(buf, int64(id))
		} else {
			buf = binary.AppendUvarint(buf, uint64(id-prevID))
		}
		prevID = id
		iv := ix.Intervals[id]
		buf = appendEFSet(buf, iv.Trajs)
		if buf, err = appendBucketLayout(buf, nbits, iv.Regions); err != nil {
			return nil, fmt.Errorf("stiu: interval %d: %w", id, err)
		}
	}

	// Trajectory-region section: directory + per-trajectory layouts.
	if buf, err = appendDirectory(buf, len(ix.byTrajRegion), func(blob []byte, j int) ([]byte, error) {
		return appendBucketLayout(blob, nbits, ix.byTrajRegion[j])
	}); err != nil {
		return nil, fmt.Errorf("stiu: trajRegion section: %w", err)
	}
	return buf, nil
}

// appendDirectory emits n fixed-width u32 offsets plus a terminator over
// the blobs produced by emit, then the concatenated blobs themselves.
func appendDirectory(buf []byte, n int, emit func(blob []byte, i int) ([]byte, error)) ([]byte, error) {
	blob := make([]byte, 0, 1<<12)
	offs := make([]uint32, 1, n+1)
	var err error
	for i := 0; i < n; i++ {
		if blob, err = emit(blob, i); err != nil {
			return nil, err
		}
		if len(blob) > math.MaxUint32 {
			return nil, fmt.Errorf("section exceeds u32 offset space (%d bytes)", len(blob))
		}
		offs = append(offs, uint32(len(blob)))
	}
	for _, o := range offs {
		buf = binary.LittleEndian.AppendUint32(buf, o)
	}
	return append(buf, blob...), nil
}

// appendBucketLayout emits one succinct bucket group: occupancy bitvector
// over nbits regions, (npop+1) u32 offsets, and the concatenated bucket
// encodings in ascending region-id (= rank) order.
func appendBucketLayout(buf []byte, nbits int, m map[roadnet.RegionID]*RegionBucket) ([]byte, error) {
	ids := make([]int32, 0, len(m))
	for id := range m {
		if id < 0 || int(id) >= nbits {
			return nil, fmt.Errorf("region id %d outside %d-cell grid", id, nbits)
		}
		ids = append(ids, int32(id))
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	buf = appendBitvec(buf, nbits, ids)
	blob := make([]byte, 0, 64*len(ids))
	offs := make([]uint32, 1, len(ids)+1)
	for _, id := range ids {
		blob = appendBucket(blob, m[roadnet.RegionID(id)])
		if len(blob) > math.MaxUint32 {
			return nil, fmt.Errorf("bucket blob exceeds u32 offset space (%d bytes)", len(blob))
		}
		offs = append(offs, uint32(len(blob)))
	}
	for _, o := range offs {
		buf = binary.LittleEndian.AppendUint32(buf, o)
	}
	return append(buf, blob...), nil
}

// directory slices one fixed-width u32 offset directory and the blob it
// spans; per-entry monotonicity is checked lazily at force time.
func (r *sidecarReader) directory(n int) (dir, blob []byte, err error) {
	dir, err = r.take((n + 1) * 4)
	if err != nil {
		return nil, nil, err
	}
	if binary.LittleEndian.Uint32(dir) != 0 {
		return nil, nil, fmt.Errorf("directory does not start at offset 0")
	}
	blob, err = r.take(int(binary.LittleEndian.Uint32(dir[4*n:])))
	if err != nil {
		return nil, nil, err
	}
	return dir, blob, nil
}

// bucketLayout parses one succinct bucket group: verified bitvector,
// offset table, bucket blob.  Slicing and verification only — buckets
// stay encoded.
func (r *sidecarReader) bucketLayout(universe int) (bitvec, []byte, []byte, error) {
	occ, err := r.bitvec(universe)
	if err != nil {
		return bitvec{}, nil, nil, err
	}
	offs, err := r.take((occ.npop + 1) * 4)
	if err != nil {
		return bitvec{}, nil, nil, err
	}
	if binary.LittleEndian.Uint32(offs) != 0 {
		return bitvec{}, nil, nil, fmt.Errorf("bucket offsets do not start at 0")
	}
	blob, err := r.take(int(binary.LittleEndian.Uint32(offs[4*occ.npop:])))
	if err != nil {
		return bitvec{}, nil, nil, err
	}
	return occ, offs, blob, nil
}

// decodeSidecarV2 parses the succinct layout.  Temporal sections,
// candidate sets, per-trajectory region layouts and every region bucket
// stay on the buffer; only the interval skeleton is materialized here.
func decodeSidecarV2(r *sidecarReader, ix *Index, numTrajs int) (*Index, error) {
	ix.succinct = true
	nbits := ix.Opts.GridNX * ix.Opts.GridNY
	resident := 0

	var err error
	if ix.tempDir, ix.tempBlob, err = r.directory(numTrajs); err != nil {
		return nil, fmt.Errorf("stiu: sidecar temporal directory: %w", err)
	}
	ix.lazyTemporal = make([]lazyBlock, numTrajs)
	resident += len(ix.tempDir)

	nIv, err := r.intervalCount()
	if err != nil {
		return nil, fmt.Errorf("stiu: sidecar intervals: %w", err)
	}
	prevID := int64(0)
	for i := 0; i < nIv; i++ {
		id, err := r.intervalID(i == 0, &prevID)
		if err != nil {
			return nil, fmt.Errorf("stiu: sidecar intervals: %w", err)
		}
		iv := &Interval{}
		if iv.cand.data, err = r.efSlice(); err != nil {
			return nil, fmt.Errorf("stiu: sidecar interval %d trajs: %w", id, err)
		}
		if iv.occ, iv.offs, iv.buckets, err = r.bucketLayout(nbits); err != nil {
			return nil, fmt.Errorf("stiu: sidecar interval %d regions: %w", id, err)
		}
		iv.decoded = make([]atomic.Pointer[RegionBucket], iv.occ.npop)
		resident += iv.occ.sizeBytes() + len(iv.offs)
		ix.Intervals[id] = iv
	}

	if ix.trDir, ix.trBlob, err = r.directory(numTrajs); err != nil {
		return nil, fmt.Errorf("stiu: sidecar trajRegion directory: %w", err)
	}
	ix.trV2 = make([]trSuccinct, numTrajs)
	resident += len(ix.trDir)

	if r.remaining() != 0 {
		return nil, fmt.Errorf("stiu: sidecar has %d trailing bytes", r.remaining())
	}
	ix.succinctBytes.Store(int64(resident))
	return ix, nil
}

// materializeV2 rebuilds the eager maps (Interval.Regions, byTrajRegion)
// from the succinct layout, decoding every bucket.  Idempotent and safe
// against concurrent queries: the query paths never read the maps of a
// succinct index, and the bucket cache tolerates duplicate decodes.
func (ix *Index) materializeV2() error {
	ix.matMu.Lock()
	defer ix.matMu.Unlock()
	if ix.materialized || ix.matErr != nil {
		return ix.matErr
	}
	fail := func(err error) error {
		ix.matErr = err
		return err
	}
	for id, iv := range ix.Intervals {
		if _, err := ix.Candidates(id); err != nil {
			return fail(err)
		}
		m, err := ix.materializeLayout(&iv.occ, iv.offs, iv.buckets, iv.decoded)
		if err != nil {
			return fail(fmt.Errorf("stiu: interval %d: %w", id, err))
		}
		iv.Regions = m
	}
	for j := range ix.trV2 {
		tr := &ix.trV2[j]
		if !tr.hdr.done.Load() {
			if err := ix.forceTRHeader(j); err != nil {
				return fail(err)
			}
		} else if tr.hdr.err != nil {
			return fail(tr.hdr.err)
		}
		m, err := ix.materializeLayout(&tr.occ, tr.offs, tr.buckets, tr.decoded)
		if err != nil {
			return fail(fmt.Errorf("stiu: trajRegion[%d]: %w", j, err))
		}
		ix.byTrajRegion[j] = m
	}
	ix.materialized = true
	return nil
}

// materializeLayout decodes every occupied bucket of one layout into a
// region map, reusing already-cached decodes.
func (ix *Index) materializeLayout(occ *bitvec, offs, blob []byte, cache []atomic.Pointer[RegionBucket]) (map[roadnet.RegionID]*RegionBucket, error) {
	m := make(map[roadnet.RegionID]*RegionBucket, occ.npop)
	for k, re := range occ.appendOnes(nil) {
		b := cache[k].Load()
		if b == nil {
			var err error
			if b, err = ix.decodeBucketAt(offs, blob, cache, k); err != nil {
				return nil, err
			}
		}
		m[roadnet.RegionID(re)] = b
	}
	return m, nil
}
