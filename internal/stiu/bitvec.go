// Broadword rank bitvectors for the UTCI v2 sidecar (FORMAT.md §5).
//
// A bitvec is a read-only view over sidecar bytes: 64-bit little-endian
// words plus one 32-bit cumulative-popcount superblock per 8 words (512
// bits), so membership and rank answer in O(1) straight off a memory
// mapping without materializing anything.  The superblocks are verified
// against the words at parse time, which bounds every later rank result
// by the declared popcount — downstream offset lookups stay in range even
// for hostile inputs.
package stiu

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// superWords is the rank superblock geometry: one cumulative u32 per 8
// words = 512 bits.
const superWords = 8

// bitvec is a rank-capable bitvector view.  words and ranks alias the
// sidecar buffer (possibly a read-only mapping); the struct itself is
// cheap to copy.
type bitvec struct {
	words []byte // nwords × u64, little-endian
	ranks []byte // ⌈nwords/8⌉ × u32: ones strictly before word s·8
	nbits int
	npop  int
}

// appendBitvec encodes a bitvector of nbits universe bits whose set
// positions are vals (ascending, distinct, all in [0, nbits)).
// Layout: uvarint nbits | uvarint npop | words | rank superblocks.
func appendBitvec(buf []byte, nbits int, vals []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(nbits))
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	nwords := (nbits + 63) / 64
	words := make([]uint64, nwords)
	for _, v := range vals {
		words[v>>6] |= 1 << (uint(v) & 63)
	}
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	cum := uint32(0)
	for s := 0; s*superWords < nwords; s++ {
		buf = binary.LittleEndian.AppendUint32(buf, cum)
		for w := s * superWords; w < nwords && w < (s+1)*superWords; w++ {
			cum += uint32(bits.OnesCount64(words[w]))
		}
	}
	return buf
}

// bitvec parses a bitvector and verifies it describes exactly wantBits
// universe bits with internally consistent rank superblocks; any
// inconsistency (wrong popcount, stale superblock, set padding bits) is
// an error rather than a latent out-of-range rank.
func (r *sidecarReader) bitvec(wantBits int) (bitvec, error) {
	nb, err := r.uvarint()
	if err != nil {
		return bitvec{}, err
	}
	if nb != uint64(wantBits) {
		return bitvec{}, fmt.Errorf("bitvector universe %d, want %d", nb, wantBits)
	}
	np, err := r.uvarint()
	if err != nil {
		return bitvec{}, err
	}
	if np > nb {
		return bitvec{}, fmt.Errorf("bitvector popcount %d exceeds universe %d", np, nb)
	}
	nwords := (wantBits + 63) / 64
	words, err := r.take(nwords * 8)
	if err != nil {
		return bitvec{}, err
	}
	nSuper := (nwords + superWords - 1) / superWords
	ranks, err := r.take(nSuper * 4)
	if err != nil {
		return bitvec{}, err
	}
	cum := 0
	for w := 0; w < nwords; w++ {
		if w%superWords == 0 {
			if got := binary.LittleEndian.Uint32(ranks[w/superWords*4:]); int(got) != cum {
				return bitvec{}, fmt.Errorf("rank superblock %d is %d, want %d", w/superWords, got, cum)
			}
		}
		wv := binary.LittleEndian.Uint64(words[8*w:])
		if w == nwords-1 && wantBits%64 != 0 && wv>>(uint(wantBits)%64) != 0 {
			return bitvec{}, fmt.Errorf("bitvector padding bits set past %d", wantBits)
		}
		cum += bits.OnesCount64(wv)
	}
	if cum != int(np) {
		return bitvec{}, fmt.Errorf("bitvector popcount %d, declared %d", cum, np)
	}
	return bitvec{words: words, ranks: ranks, nbits: wantBits, npop: int(np)}, nil
}

// get reports bit i.  Callers bound i by nbits.
func (bv *bitvec) get(i int) bool {
	w := binary.LittleEndian.Uint64(bv.words[(i>>6)*8:])
	return w>>(uint(i)&63)&1 != 0
}

// rank1 returns the number of set bits strictly before position i: the
// superblock's cumulative count plus at most 7 word popcounts plus one
// masked partial word.  Parse-time verification guarantees the result is
// at most npop.
func (bv *bitvec) rank1(i int) int {
	s := i / (superWords * 64)
	r := int(binary.LittleEndian.Uint32(bv.ranks[s*4:]))
	for w := s * superWords; w < i>>6; w++ {
		r += bits.OnesCount64(binary.LittleEndian.Uint64(bv.words[8*w:]))
	}
	if i&63 != 0 {
		w := binary.LittleEndian.Uint64(bv.words[(i>>6)*8:])
		r += bits.OnesCount64(w & (1<<(uint(i)&63) - 1))
	}
	return r
}

// appendOnes appends the positions of every set bit in ascending order,
// the iteration Materialize uses to rebuild the region maps.
func (bv *bitvec) appendOnes(dst []int32) []int32 {
	for w := 0; w*64 < bv.nbits; w++ {
		v := binary.LittleEndian.Uint64(bv.words[8*w:])
		for v != 0 {
			dst = append(dst, int32(w*64+bits.TrailingZeros64(v)))
			v &= v - 1
		}
	}
	return dst
}

// sizeBytes is the succinct footprint of the view (words + superblocks).
func (bv *bitvec) sizeBytes() int { return len(bv.words) + len(bv.ranks) }
