package stiu

import (
	"fmt"
	"sort"

	"utcq/internal/core"
	"utcq/internal/roadnet"
)

// instWalk is the decoded traversal of one instance used during index
// construction: edge-aligned entries, vertices, and region visits.
type instWalk struct {
	orig    int
	refOrig int // -1 for references
	p       float64
	visits  []visit
	factors []factorSpan // non-references only
}

// visit is one region entry event.
type visit struct {
	re       roadnet.RegionID
	first    bool             // the instance starts in this region
	fv       roadnet.VertexID // final vertex (SV when first)
	fvNo     int              // entry index of the edge arriving at fv (0 when first)
	dNo      int              // γ[fvNo]: index of the first point after fv
	pointIdx int              // last point index at or before entering
}

// factorSpan maps E-entry offsets to factors of a non-reference.
type factorSpan struct {
	start, end int // entry offsets [start, end)
	rv         roadnet.VertexID
	maPos      int
}

// trajBatch is the output of one trajectory's walk phase: everything the
// merge phase needs to fold the trajectory into the index.  Batches are
// produced in parallel (one worker per trajectory) and merged in
// trajectory order, so the built index is identical to a serial build.
type trajBatch struct {
	temporal        []TemporalEntry
	firstIv, lastIv int // interval span covered by the trajectory
	emits           []spatialEmit
	trajRegion      map[roadnet.RegionID]*RegionBucket
}

// spatialEmit is one tuple append destined for an (interval, region) cell.
type spatialEmit struct {
	interval int
	re       roadnet.RegionID
	isRef    bool
	ref      RefTuple
	nonRef   NonRefTuple
}

// walkTrajectory decodes trajectory j and produces its tuple batch.  It
// only reads the archive (never the index maps), so any number of walks
// may run concurrently.
func (ix *Index) walkTrajectory(a *core.Archive, j int) (*trajBatch, error) {
	rec := a.Trajs[j]
	b := &trajBatch{trajRegion: make(map[roadnet.RegionID]*RegionBucket)}

	// Temporal entries: one per interval the trajectory has samples in.
	T := make([]int64, 0, rec.NumPoints)
	cur, err := rec.TimeCursorStart(a.Opts.Ts)
	if err != nil {
		return nil, err
	}
	T = append(T, cur.T())
	for cur.Next() {
		T = append(T, cur.T())
	}
	if len(T) != rec.NumPoints {
		return nil, fmt.Errorf("stiu: decoded %d of %d timestamps", len(T), rec.NumPoints)
	}
	lastInterval := -1
	for i, t := range T {
		iv := ix.IntervalOf(t)
		if iv != lastInterval {
			pos := int32(-1)
			if i < len(rec.TDeltaPos) {
				pos = int32(rec.TDeltaPos[i])
			}
			b.temporal = append(b.temporal, TemporalEntry{Start: t, No: int32(i), Pos: pos})
			lastInterval = iv
		}
	}
	b.firstIv, b.lastIv = ix.IntervalOf(T[0]), ix.IntervalOf(T[len(T)-1])

	// Decode instance walks.
	walks := make([]*instWalk, 0, len(rec.Insts))
	refViews := make(map[int]*core.RefView)
	for orig, meta := range rec.Insts {
		if !meta.IsRef {
			continue
		}
		rv, err := a.RefView(j, orig)
		if err != nil {
			return nil, err
		}
		refViews[orig] = rv
		w, err := ix.walkInstance(a, rv.SV, rv.E, rv.FullTF(), nil, nil)
		if err != nil {
			return nil, err
		}
		w.orig, w.refOrig, w.p = orig, -1, meta.P
		walks = append(walks, w)
	}
	for orig, meta := range rec.Insts {
		if meta.IsRef {
			continue
		}
		ref := refViews[meta.RefOrig]
		nv, err := a.NonRefView(j, orig, ref)
		if err != nil {
			return nil, err
		}
		e, err := nv.ExpandE(ref)
		if err != nil {
			return nil, err
		}
		tf, err := nv.FullTF(ref)
		if err != nil {
			return nil, err
		}
		w, err := ix.walkInstance(a, ref.SV, e, tf, nv.EFactors, nv.EFactorPos)
		if err != nil {
			return nil, err
		}
		w.orig, w.refOrig, w.p = orig, meta.RefOrig, meta.P
		walks = append(walks, w)
	}

	// Group instances by reference (a reference group = Ref ∪ Ref.Rrs) and
	// emit groups in ascending reference order so tuple order — and hence
	// the whole index — is deterministic.
	groups := make(map[int][]*instWalk)
	var groupKeys []int
	for _, w := range walks {
		g := w.orig
		if w.refOrig >= 0 {
			g = w.refOrig
		}
		if groups[g] == nil {
			groupKeys = append(groupKeys, g)
		}
		groups[g] = append(groups[g], w)
	}
	sort.Ints(groupKeys)

	for _, refOrig := range groupKeys {
		ix.emitGroupTuples(b, j, refOrig, groups[refOrig], refViews[refOrig], T)
	}
	return b, nil
}

// walkInstance decodes the traversal: region visits with final vertices and
// point counts, plus factor spans for non-references.
func (ix *Index) walkInstance(a *core.Archive, sv roadnet.VertexID, E []uint16, tf []bool, factors []core.EFactor, factorPos []int) (*instWalk, error) {
	g := a.Graph
	w := &instWalk{}
	curVertex := sv
	var curRegion roadnet.RegionID = roadnet.NoRegion
	lastEdgeEntry := 0
	ones := 0

	// Vertex before each entry (for factor spans).
	vertexAt := make([]roadnet.VertexID, len(E))

	for i, no := range E {
		vertexAt[i] = curVertex
		if no != 0 {
			e, ok := g.OutEdge(curVertex, int(no))
			if !ok {
				return nil, fmt.Errorf("stiu: no outgoing edge %d at vertex %d", no, curVertex)
			}
			arrivedFrom := curVertex
			prevEdgeEntry := lastEdgeEntry
			lastEdgeEntry = i
			curVertex = g.Edge(e).To
			for _, re := range ix.Grid.CellsOfEdge(g, e) {
				if re == curRegion {
					continue
				}
				if curRegion == roadnet.NoRegion {
					// First region: the (SV, 0, 0) form.
					w.visits = append(w.visits, visit{re: re, first: true, fv: sv, fvNo: 0, dNo: 0, pointIdx: 0})
				} else {
					dNo := ones // points seen so far = index of the next point
					pi := ones - 1
					if pi < 0 {
						pi = 0
					}
					w.visits = append(w.visits, visit{
						re: re, fv: arrivedFrom, fvNo: prevEdgeEntry, dNo: dNo, pointIdx: pi,
					})
				}
				curRegion = re
			}
		}
		if tf[i] {
			ones++
		}
	}

	// Factor spans for non-references.
	off := 0
	for h, f := range factors {
		flen := 1
		if !f.NotInRef {
			flen = f.L
			if f.HasM {
				flen++
			}
		}
		span := factorSpan{start: off, end: off + flen, maPos: factorPos[h]}
		// rv: the vertex resolving the factor's first non-zero entry.
		span.rv = roadnet.NoVertex
		for i := span.start; i < span.end && i < len(E); i++ {
			if E[i] != 0 {
				span.rv = vertexAt[i]
				break
			}
		}
		if span.rv == roadnet.NoVertex && span.start < len(vertexAt) {
			span.rv = vertexAt[span.start]
		}
		w.factors = append(w.factors, span)
		off += flen
	}
	return w, nil
}

// emitGroupTuples aggregates the group's visits into per-(interval, region)
// reference and non-reference tuples, appending interval-cell tuples to the
// batch's emit list and per-trajectory tuples to its trajRegion buckets.
func (ix *Index) emitGroupTuples(b *trajBatch, j, refOrig int, members []*instWalk, refView *core.RefView, T []int64) {
	type key struct {
		interval int
		re       roadnet.RegionID
	}
	type agg struct {
		refVisit *visit
		seen     map[int]bool // Ω is a set: each instance counts once
		pTotal   float64
		pMax     float64 // max non-reference probability (0 when none)
	}
	aggs := make(map[key]*agg)
	var keysInOrder []key

	intervalsOf := func(v *visit) []int {
		a0 := ix.IntervalOf(T[v.pointIdx])
		next := v.pointIdx + 1
		if next >= len(T) {
			next = len(T) - 1
		}
		a1 := ix.IntervalOf(T[next])
		if a1 == a0 {
			return []int{a0}
		}
		out := make([]int, 0, a1-a0+1)
		for iv := a0; iv <= a1; iv++ {
			out = append(out, iv)
		}
		return out
	}

	for _, m := range members {
		for vi := range m.visits {
			v := &m.visits[vi]
			for _, iv := range intervalsOf(v) {
				k := key{iv, v.re}
				ag := aggs[k]
				if ag == nil {
					ag = &agg{seen: make(map[int]bool)}
					aggs[k] = ag
					keysInOrder = append(keysInOrder, k)
				}
				if !ag.seen[m.orig] {
					ag.seen[m.orig] = true
					ag.pTotal += m.p
					if m.refOrig >= 0 && m.p > ag.pMax {
						ag.pMax = m.p
					}
				}
				if m.refOrig < 0 && ag.refVisit == nil {
					ag.refVisit = v
				}
			}
		}
	}

	// Reference tuples.
	for _, k := range keysInOrder {
		ag := aggs[k]
		rt := RefTuple{
			Traj:   int32(j),
			Orig:   int32(refOrig),
			FV:     roadnet.NoVertex, // fv.id = ∞ when the reference skips re
			PTotal: float32(ag.pTotal),
			PMax:   float32(ag.pMax),
		}
		if ag.refVisit != nil {
			rt.FV = ag.refVisit.fv
			rt.FVNo = int32(ag.refVisit.fvNo)
			dpos := refView.DPos()
			dNo := ag.refVisit.dNo
			if dNo >= len(dpos) {
				dNo = len(dpos) - 1
			}
			if ag.refVisit.first {
				rt.DPos = 0
			} else {
				rt.DPos = int32(dpos[dNo])
			}
		}
		b.emits = append(b.emits, spatialEmit{interval: k.interval, re: k.re, isRef: true, ref: rt})
		tb := b.bucket(k.re)
		tb.Refs = append(tb.Refs, rt)
	}

	// Non-reference tuples, with the factor-crossing rule: one tuple per
	// (instance, factor), kept for the first region traversed.
	for _, m := range members {
		if m.refOrig < 0 {
			continue
		}
		usedFactor := make(map[int]bool)
		for vi := range m.visits {
			v := &m.visits[vi]
			var nt NonRefTuple
			if v.first {
				nt = NonRefTuple{
					Traj: int32(j), Orig: int32(m.orig), RefOrig: int32(m.refOrig),
					RV: v.fv, RVNo: 0, MaPos: 0,
				}
			} else {
				h := factorOf(m.factors, v.fvNo)
				if h < 0 || usedFactor[h] {
					continue
				}
				usedFactor[h] = true
				nt = NonRefTuple{
					Traj: int32(j), Orig: int32(m.orig), RefOrig: int32(m.refOrig),
					RV: m.factors[h].rv, RVNo: int32(m.factors[h].start), MaPos: int32(m.factors[h].maPos),
				}
			}
			for _, iv := range intervalsOf(v) {
				b.emits = append(b.emits, spatialEmit{interval: iv, re: v.re, isRef: false, nonRef: nt})
			}
			tb := b.bucket(v.re)
			tb.NonRefs = append(tb.NonRefs, nt)
		}
	}
}

// bucket returns (creating if needed) the batch's per-trajectory bucket of
// region re.
func (b *trajBatch) bucket(re roadnet.RegionID) *RegionBucket {
	bk := b.trajRegion[re]
	if bk == nil {
		bk = &RegionBucket{}
		b.trajRegion[re] = bk
	}
	return bk
}

// factorOf returns the factor index whose entry span contains off.
func factorOf(spans []factorSpan, off int) int {
	for h, s := range spans {
		if off >= s.start && off < s.end {
			return h
		}
	}
	return -1
}
