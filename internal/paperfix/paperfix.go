// Package paperfix builds the running example of the paper (Fig 2,
// Tables 2-4): the ten-vertex road network and the uncertain trajectory
// Tu1 with instances Tu11 (p=0.75), Tu12 (p=0.2) and Tu13 (p=0.05).  Tests
// across the repository check algorithm outputs against the paper's worked
// numbers through this fixture.
package paperfix

import (
	"fmt"

	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// Fixture bundles the example network and trajectory.
type Fixture struct {
	Graph *roadnet.Graph
	IDs   map[string]roadnet.VertexID
	Tu1   *traj.Uncertain
}

// Ts is the example's default sample interval (240 s; Section 4.1).
const Ts int64 = 240

// New constructs the fixture.  Outgoing edge numbers are arranged so the
// example's E sequences match Tables 2-3 exactly:
// E(Tu11) = ⟨1,2,1,2,2,0,4,1,0⟩, E(Tu12) = ⟨1,1,1,2,2,0,4,1,0⟩,
// E(Tu13) = ⟨1,2,1,2,2,0,4,1,2⟩.
func New() (*Fixture, error) {
	b := roadnet.NewBuilder()
	ids := make(map[string]roadnet.VertexID)
	coords := map[string][2]float64{
		"v1": {0, 0}, "v2": {800, 0}, "v3": {1600, 0}, "v4": {2400, 0},
		"v5": {3200, 0}, "v6": {4000, 0}, "v7": {5600, 0}, "v8": {6400, 0},
		"v9": {6400, -800}, "v10": {1600, 800},
	}
	for _, n := range []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9", "v10"} {
		c := coords[n]
		ids[n] = b.AddVertex(c[0], c[1])
	}
	add := func(a, c string) { b.AddEdge(ids[a], ids[c]) }
	add("v1", "v2")  // v1 no1
	add("v2", "v10") // v2 no1
	add("v2", "v3")  // v2 no2
	add("v3", "v4")  // v3 no1
	add("v4", "v3")  // v4 no1 (filler)
	add("v4", "v5")  // v4 no2
	add("v5", "v4")  // v5 no1 (filler)
	add("v5", "v6")  // v5 no2
	add("v6", "v5")  // v6 no1 (filler)
	add("v6", "v10") // v6 no2 (filler)
	add("v6", "v9")  // v6 no3 (filler)
	add("v6", "v7")  // v6 no4
	add("v7", "v8")  // v7 no1
	add("v8", "v7")  // v8 no1 (filler)
	add("v8", "v9")  // v8 no2
	add("v10", "v4") // v10 no1
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, err
	}

	f := &Fixture{Graph: g, IDs: ids}
	edge := func(a, c string) roadnet.EdgeID {
		e, ok := g.EdgeBetween(ids[a], ids[c])
		if !ok {
			panic(fmt.Sprintf("paperfix: edge %s->%s missing", a, c))
		}
		return e
	}
	at := func(a, c string, rd float64) roadnet.Position {
		return g.PositionAtRD(edge(a, c), rd)
	}

	T := []int64{
		5*3600 + 3*60 + 25, 5*3600 + 7*60 + 25, 5*3600 + 11*60 + 26,
		5*3600 + 15*60 + 26, 5*3600 + 19*60 + 25, 5*3600 + 23*60 + 25,
		5*3600 + 27*60 + 25,
	}

	ins1, err := traj.NewInstance(g, []roadnet.EdgeID{
		edge("v1", "v2"), edge("v2", "v3"), edge("v3", "v4"), edge("v4", "v5"),
		edge("v5", "v6"), edge("v6", "v7"), edge("v7", "v8"),
	}, []roadnet.Position{
		at("v1", "v2", 0.875), at("v3", "v4", 0.25), at("v5", "v6", 0.5),
		at("v5", "v6", 0.875), at("v6", "v7", 0.5), at("v7", "v8", 0),
		at("v7", "v8", 0.875),
	}, 0.75)
	if err != nil {
		return nil, err
	}

	ins2, err := traj.NewInstance(g, []roadnet.EdgeID{
		edge("v1", "v2"), edge("v2", "v10"), edge("v10", "v4"), edge("v4", "v5"),
		edge("v5", "v6"), edge("v6", "v7"), edge("v7", "v8"),
	}, []roadnet.Position{
		at("v1", "v2", 0.875), at("v2", "v10", 0.25), at("v5", "v6", 0.5),
		at("v5", "v6", 0.875), at("v6", "v7", 0.5), at("v7", "v8", 0),
		at("v7", "v8", 0.875),
	}, 0.2)
	if err != nil {
		return nil, err
	}

	ins3, err := traj.NewInstance(g, []roadnet.EdgeID{
		edge("v1", "v2"), edge("v2", "v3"), edge("v3", "v4"), edge("v4", "v5"),
		edge("v5", "v6"), edge("v6", "v7"), edge("v7", "v8"), edge("v8", "v9"),
	}, []roadnet.Position{
		at("v1", "v2", 0.875), at("v3", "v4", 0.25), at("v5", "v6", 0.5),
		at("v5", "v6", 0.875), at("v6", "v7", 0.5), at("v7", "v8", 0),
		at("v8", "v9", 0.5),
	}, 0.05)
	if err != nil {
		return nil, err
	}

	f.Tu1 = &traj.Uncertain{T: T, Instances: []traj.Instance{ins1, ins2, ins3}}
	if err := f.Tu1.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustNew panics on error; for tests.
func MustNew() *Fixture {
	f, err := New()
	if err != nil {
		panic(err)
	}
	return f
}

// Edge returns the edge between two named vertices.
func (f *Fixture) Edge(a, b string) roadnet.EdgeID {
	e, ok := f.Graph.EdgeBetween(f.IDs[a], f.IDs[b])
	if !ok {
		panic(fmt.Sprintf("paperfix: edge %s->%s missing", a, b))
	}
	return e
}
