//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package mmapio

import (
	"errors"
	"os"
)

// Platforms without the syscall mmap wrappers always take the heap path.
const mmapSupported = false

var errNoMmap = errors.New("mmapio: mmap not supported on this platform")

func mapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func unmapFile(data []byte) error { return nil }
