//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package mmapio

import (
	"os"
	"syscall"
)

// The stdlib syscall mmap wrappers cover every unix the project targets;
// keeping the module dependency-free rules out golang.org/x/sys.
const mmapSupported = true

// mapFile maps size bytes of f read-only and shared (the file is written
// once via rename and never mutated, so shared vs private is moot; shared
// avoids reserving swap).
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
