package mmapio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"utcq/internal/faultfs"
)

func writeTemp(t *testing.T, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMapped(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	t.Setenv(NoMmapEnv, "") // mapping is the subject even under a no-mmap CI pass
	content := bytes.Repeat([]byte{0xAB, 0xCD}, 4096)
	m, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mapped() {
		t.Fatal("expected an OS mapping")
	}
	if !bytes.Equal(m.Data(), content) {
		t.Fatal("mapped content differs from file content")
	}
	if got := MappedBytes(); got < int64(len(content)) {
		t.Fatalf("MappedBytes = %d, want >= %d", got, len(content))
	}
	before := MappedBytes()
	m.Release()
	if got := MappedBytes(); got != before-int64(len(content)) {
		t.Fatalf("MappedBytes after release = %d, want %d", got, before-int64(len(content)))
	}
}

func TestOpenHeapFallback(t *testing.T) {
	t.Setenv(NoMmapEnv, "1")
	content := []byte("heap path")
	m, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("UTCQ_NO_MMAP=1 still produced a mapping")
	}
	if !bytes.Equal(m.Data(), content) {
		t.Fatal("heap content differs from file content")
	}
	m.Release()
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if m.Mapped() || len(m.Data()) != 0 {
		t.Fatalf("empty file: mapped=%v len=%d", m.Mapped(), len(m.Data()))
	}
	m.Release()
}

func TestRefcountDefersUnmap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	t.Setenv(NoMmapEnv, "") // mapping is the subject even under a no-mmap CI pass
	content := bytes.Repeat([]byte{7}, 8192)
	m, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatal(err)
	}
	m.Retain()
	m.Release() // creator's reference
	// The retained reference must keep the data addressable.
	if m.Data()[100] != 7 || m.Data()[8191] != 7 {
		t.Fatal("data unreadable while a reference is held")
	}
	m.Release()
	if m.Data() != nil {
		t.Fatal("data not cleared after the last release")
	}
}

// TestMapFailureFallsBackToHeap forces the platform map call to fail and
// requires Open to degrade to the heap path silently: a map failure
// (exotic filesystem, resource limit) must not fail the open.
func TestMapFailureFallsBackToHeap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	t.Setenv(NoMmapEnv, "")
	orig := mapFileImpl
	mapFileImpl = func(f *os.File, size int64) ([]byte, error) {
		return nil, errors.New("injected map failure")
	}
	defer func() { mapFileImpl = orig }()

	content := bytes.Repeat([]byte{0x5A}, 4096)
	before := MappedBytes()
	m, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatalf("map failure must fall back, not fail: %v", err)
	}
	defer m.Release()
	if m.Mapped() {
		t.Fatal("failed map call still reported a mapping")
	}
	if !bytes.Equal(m.Data(), content) {
		t.Fatal("fallback content differs from file content")
	}
	if got := MappedBytes(); got != before {
		t.Fatalf("failed mapping leaked into MappedBytes: %d -> %d", before, got)
	}
}

// TestOpenInNonOSFS pins the faultfs path of OpenIn: any non-OS
// filesystem reads onto the heap through the abstraction (so injected
// read faults surface) instead of attempting an OS mapping of a file
// that does not exist on disk.
func TestOpenInNonOSFS(t *testing.T) {
	mem := faultfs.NewMemFS()
	content := []byte("in-memory archive")
	f, err := mem.Create("a.utcq")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(content); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m, err := OpenIn(mem, "a.utcq")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if m.Mapped() {
		t.Fatal("MemFS content cannot be OS-mapped")
	}
	if !bytes.Equal(m.Data(), content) {
		t.Fatal("OpenIn content differs")
	}
}

func TestUnlinkedFileStaysReadable(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	t.Setenv(NoMmapEnv, "") // mapping is the subject even under a no-mmap CI pass
	content := bytes.Repeat([]byte{3}, 4096)
	path := writeTemp(t, content)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// Tombstone GC deletes shard files that older generations may still
	// have mapped; the pages must stay valid until the mapping drops.
	if !bytes.Equal(m.Data(), content) {
		t.Fatal("mapping invalid after unlink")
	}
}
