//go:build linux

package mmapio

import (
	"bytes"
	"os"
)

// ResidentSetBytes returns the process's resident set size from
// /proc/self/statm (second field, in pages), or 0 when unreadable.  It
// backs the /stats rssBytes gauge: together with MappedBytes it shows how
// much of the mapped data is actually paged in.
func ResidentSetBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := bytes.Fields(b)
	if len(fields) < 2 {
		return 0
	}
	pages := int64(0)
	for _, c := range fields[1] {
		if c < '0' || c > '9' {
			return 0
		}
		pages = pages*10 + int64(c-'0')
	}
	return pages * int64(os.Getpagesize())
}
