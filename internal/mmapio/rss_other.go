//go:build !linux

package mmapio

// ResidentSetBytes returns 0 on platforms without /proc (the gauge is
// advisory; 0 reads as "unavailable").
func ResidentSetBytes() int64 { return 0 }
