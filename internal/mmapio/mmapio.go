// Package mmapio maps read-only files into memory so archives can be
// decoded in place instead of copied onto the heap.  On platforms with
// mmap support a Map is backed by an OS mapping (the page cache *is* the
// buffer: untouched records cost no resident memory, and the kernel
// reclaims clean pages under pressure); elsewhere — or when the
// UTCQ_NO_MMAP=1 environment variable is set — Open falls back to a plain
// heap read with identical semantics, so callers never branch on platform.
//
// Lifetime is reference-counted rather than scoped: decoded records alias
// subslices of the mapping, and in this codebase records outlive the file
// handle that produced them (store compaction moves TrajRecord pointers
// from delta archives into a merged archive).  A creator holds one
// reference; it Retains once per escaping alias holder and attaches a
// runtime.AddCleanup that Releases when the holder is collected.  The
// mapping is unmapped exactly when the last reference drops, so no live
// []byte can ever point into unmapped memory.  Unlinking a mapped file
// (the store's tombstone GC does) is safe: POSIX keeps the pages valid
// until the mapping goes away.
package mmapio

import (
	"fmt"
	"os"
	"sync/atomic"

	"utcq/internal/faultfs"
)

// mappedBytes is the process-wide gauge of live OS-mapped bytes
// (heap-fallback buffers are not counted — they show up in Go heap
// metrics instead).
var mappedBytes atomic.Int64

// MappedBytes returns the total bytes currently mapped by this package
// across all open Maps.
func MappedBytes() int64 { return mappedBytes.Load() }

// Map is a read-only view of one file, either OS-mapped or heap-backed.
type Map struct {
	data   []byte
	mapped bool
	refs   atomic.Int64
}

// NoMmapEnv is the environment variable that forces the heap fallback at
// runtime ("1" disables mapping); CI runs the store and query test
// packages under it so both paths stay exercised.
const NoMmapEnv = "UTCQ_NO_MMAP"

// OpenIn opens path through the given filesystem abstraction.  The real
// filesystem (faultfs.OS or nil) takes the Open path below — OS mapping
// with heap fallback.  Any other FS (the fault-injection substrate of
// internal/faultfs) has no OS file to map, so the content is read through
// it onto the heap: fault injection exercises every read failure the map
// path can see, while the mapping syscalls themselves stay covered by the
// mapFileImpl hook (see TestMapFailureFallsBackToHeap).
func OpenIn(fs faultfs.FS, path string) (*Map, error) {
	if faultfs.IsOS(fs) {
		return Open(path)
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Map{data: data}
	m.refs.Store(1)
	return m, nil
}

// mapFileImpl indirects the platform map call so tests can force a map
// failure and pin the heap-fallback path (production code never touches
// it).
var mapFileImpl = mapFile

// Open maps path read-only.  The heap fallback is selected when the
// platform lacks mmap, when the file is empty (zero-length mappings are
// invalid), or when UTCQ_NO_MMAP=1; the variable is consulted per call so
// tests can flip it with t.Setenv.  The returned Map holds one reference.
func Open(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(maxInt) {
		return nil, fmt.Errorf("mmapio: %s is %d bytes, too large to map", path, size)
	}
	m := &Map{}
	m.refs.Store(1)
	if size > 0 && mmapSupported && os.Getenv(NoMmapEnv) != "1" {
		data, err := mapFileImpl(f, size)
		if err == nil {
			m.data, m.mapped = data, true
			mappedBytes.Add(size)
			return m, nil
		}
		// Fall through: a map failure (exotic filesystem, resource limit)
		// degrades to the heap path instead of failing the open.
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && size > 0 {
		return nil, err
	}
	m.data = data
	return m, nil
}

const maxInt = int(^uint(0) >> 1)

// Data returns the file contents.  The slice stays valid until the last
// reference is released.
func (m *Map) Data() []byte { return m.data }

// Mapped reports whether the Map is backed by an OS mapping (false for
// the heap fallback, whose lifetime the garbage collector handles
// directly).
func (m *Map) Mapped() bool { return m.mapped }

// Retain adds a reference.  Call once per holder that aliases Data past
// the creator's Release.
func (m *Map) Retain() { m.refs.Add(1) }

// Release drops one reference; the last release unmaps.  Safe to call
// from finalizer/cleanup goroutines.
func (m *Map) Release() {
	if m.refs.Add(-1) != 0 {
		return
	}
	if m.mapped {
		mappedBytes.Add(-int64(len(m.data)))
		_ = unmapFile(m.data)
		m.mapped = false
	}
	m.data = nil
}

// Close is Release under the name deferred cleanup reads naturally.
func (m *Map) Close() { m.Release() }
