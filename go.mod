module utcq

go 1.24
