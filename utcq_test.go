package utcq_test

import (
	"bytes"
	"testing"

	"utcq"
	"utcq/internal/core"
)

// TestPublicAPIPipeline exercises the whole facade: dataset generation,
// compression, serialization, indexing and all three query types.
func TestPublicAPIPipeline(t *testing.T) {
	p := utcq.ProfileCD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := utcq.BuildDataset(p, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := utcq.Compress(ds.Graph, ds.Trajectories, utcq.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	if arch.Stats.TotalRatio() <= 1 {
		t.Errorf("ratio = %g", arch.Stats.TotalRatio())
	}

	// Round trip through the serialized form.
	var buf bytes.Buffer
	if err := arch.Save(&buf); err != nil {
		t.Fatal(err)
	}
	arch2, err := core.Load(&buf, ds.Graph)
	if err != nil {
		t.Fatal(err)
	}

	idx, err := utcq.BuildIndex(arch2, utcq.DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := utcq.NewEngine(arch2, idx)
	oracle := utcq.NewOracle(ds.Graph, ds.Trajectories)

	u := ds.Trajectories[0]
	tq := (u.T[0] + u.T[len(u.T)-1]) / 2
	got, err := eng.Where(0, tq, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Where(0, tq, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("where: %d results, oracle %d", len(got), len(want))
	}

	path, err := u.Instances[0].PathEdges(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	loc := ds.Graph.PositionAtRD(path[len(path)/2], 0.5)
	if _, err := eng.When(0, loc, 0.1); err != nil {
		t.Fatal(err)
	}

	b := ds.Graph.Bounds()
	re := utcq.Rect{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}
	hits, err := eng.Range(re, tq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The whole-network rectangle at a live time must contain trajectory 0.
	found := false
	for _, j := range hits {
		if j == 0 {
			found = true
		}
	}
	if !found {
		t.Error("range over the whole network missed trajectory 0")
	}

	// Decompression within bounds.
	back, err := utcq.Decompress(arch2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds.Trajectories) {
		t.Fatalf("decoded %d trajectories", len(back))
	}
}

// TestMatcherFacade checks the exported map-matching entry point.
func TestMatcherFacade(t *testing.T) {
	b := utcq.NewGraphBuilder()
	v0 := b.AddVertex(0, 0)
	v1 := b.AddVertex(300, 0)
	v2 := b.AddVertex(600, 0)
	b.AddEdge(v0, v1)
	b.AddEdge(v1, v2)
	g := b.Build()
	m := utcq.NewMatcher(g, utcq.DefaultMatchConfig())
	u, err := m.Match(utcq.RawTrajectory{Points: []utcq.RawPoint{
		{X: 50, Y: 3, T: 0}, {X: 350, Y: -4, T: 30}, {X: 550, Y: 2, T: 60},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreFacade exercises the sharded-store entry points: build, save,
// lazy open, and equivalence of a scatter-gather range query with the
// single-archive engine.
func TestStoreFacade(t *testing.T) {
	p := utcq.ProfileCD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := utcq.BuildDataset(p, 25, 2)
	if err != nil {
		t.Fatal(err)
	}

	opts := utcq.DefaultStoreOptions(p.Ts)
	opts.NumShards = 3
	opts.Assignment = utcq.AssignSpatial
	st, err := utcq.BuildStore(ds.Graph, ds.Trajectories, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	st, err = utcq.OpenStore(dir, ds.Graph, utcq.OpenStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().OpenShards != 0 {
		t.Fatal("open store is not lazy")
	}

	arch, err := utcq.Compress(ds.Graph, ds.Trajectories, utcq.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := utcq.BuildIndex(arch, utcq.DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := utcq.NewEngine(arch, idx)

	u := ds.Trajectories[0]
	tq := (u.T[0] + u.T[len(u.T)-1]) / 2
	b := ds.Graph.Bounds()
	re := utcq.Rect{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}
	want, err := eng.Range(re, tq, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Range(re, tq, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("store range %v != engine range %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("store range %v != engine range %v", got, want)
		}
	}

	srv := utcq.NewQueryServer(st, utcq.QueryServerOptions{})
	if srv == nil {
		t.Fatal("nil server")
	}
}
