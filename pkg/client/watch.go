package client

import (
	"context"
	"net/url"
	"strconv"
)

// WatchRequest subscribes to /v1/watch/range: which trajectories are
// inside Rect at time T with probability >= Alpha, delivered as
// incremental updates.
type WatchRequest struct {
	Rect  Rect
	T     int64
	Alpha float64
	// PollSeconds bounds each long-poll on the server (0 = server
	// default of ~25s, capped server-side at 120s).
	PollSeconds int
}

// Watcher is a resumable range subscription.  Next long-polls for the
// next update and advances the (gen, cursor) position on success, so a
// failed poll can simply be retried — the server's cursor protocol is
// stateless and at-least-once.  Not safe for concurrent use.
type Watcher struct {
	c          *Client
	req        WatchRequest
	gen        uint64
	cursor     uint32
	subscribed bool
}

// Watch builds a Watcher.  The first Next performs the initial full
// evaluation (Reset=true); later calls resume from the cursor.
func (c *Client) Watch(req WatchRequest) *Watcher {
	return &Watcher{c: c, req: req}
}

// Gen returns the generation of the last update (0 before the first).
func (w *Watcher) Gen() uint64 { return w.gen }

// Reset drops the cursor so the next poll re-evaluates from scratch —
// e.g. after the server reported gen_unknown following a restart.
func (w *Watcher) Reset() {
	w.gen, w.cursor, w.subscribed = 0, 0, false
}

// Next long-polls once.  An empty Added with Reset false is a
// heartbeat: the subscription is alive, nothing new arrived inside the
// poll window.  On error the cursor is NOT advanced; transient errors
// (see APIError.Temporary) can be retried by calling Next again.
func (w *Watcher) Next(ctx context.Context) (WatchUpdate, error) {
	q := url.Values{}
	q.Set("minX", formatFloat(w.req.Rect.MinX))
	q.Set("minY", formatFloat(w.req.Rect.MinY))
	q.Set("maxX", formatFloat(w.req.Rect.MaxX))
	q.Set("maxY", formatFloat(w.req.Rect.MaxY))
	q.Set("t", strconv.FormatInt(w.req.T, 10))
	q.Set("alpha", formatFloat(w.req.Alpha))
	if w.req.PollSeconds > 0 {
		q.Set("timeout", strconv.Itoa(w.req.PollSeconds))
	}
	if w.subscribed {
		q.Set("gen", strconv.FormatUint(w.gen, 10))
		q.Set("cursor", strconv.FormatUint(uint64(w.cursor), 10))
	}
	var upd WatchUpdate
	if err := w.c.do(ctx, "GET", "/v1/watch/range", q, nil, &upd, true); err != nil {
		return WatchUpdate{}, err
	}
	w.gen, w.cursor, w.subscribed = upd.Gen, upd.Watermark, true
	return upd, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
