// Package client is the typed Go client of the utcqd/utcqr HTTP API: the
// wire types of every /v1 endpoint, a context-aware Client with
// capped-backoff retry that honors Retry-After, and a cursor-resuming
// Watcher for /v1/watch/range.  The server (internal/server) aliases
// these types, so the wire contract is defined once; the router
// (internal/cluster), loadgen (cmd/utcq) and the examples all speak the
// API through this package instead of hand-rolled HTTP.
//
// The package deliberately depends only on the standard library: it is
// the repo's outward-facing API surface and must stay importable without
// dragging the engine in.
package client

// Position is a network-constrained location.
type Position struct {
	Edge  int     `json:"edge"`
	NDist float64 `json:"ndist"`
}

// Rect is an axis-aligned rectangle.  An inverted rectangle
// (MinX > MaxX) is the empty marker used by dataBounds for stores that
// hold no geometry yet.
type Rect struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

// Intersects reports whether the rectangles overlap (inclusive edges).
// Inverted (empty) rectangles intersect nothing.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// WhereRequest asks where trajectory Traj's instances with probability
// >= Alpha were at time T.  Gen, when non-zero, pins the query to a
// retained store generation (sent as ?gen=N, never in the body — the
// server rejects unknown body fields).
type WhereRequest struct {
	Traj  int     `json:"traj"`
	T     int64   `json:"t"`
	Alpha float64 `json:"alpha"`
	Gen   uint64  `json:"-"`
}

// WhereResult is one instance's location, with the grid coordinates
// resolved for convenience.
type WhereResult struct {
	Inst  int     `json:"inst"`
	P     float64 `json:"p"`
	Edge  int     `json:"edge"`
	NDist float64 `json:"ndist"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// WhenRequest asks when trajectory Traj's instances with probability
// >= Alpha passed Loc.
type WhenRequest struct {
	Traj  int      `json:"traj"`
	Loc   Position `json:"loc"`
	Alpha float64  `json:"alpha"`
	Gen   uint64   `json:"-"`
}

// WhenResult is one instance's passage time.
type WhenResult struct {
	Inst int     `json:"inst"`
	P    float64 `json:"p"`
	T    int64   `json:"t"`
}

// RangeRequest asks which trajectories were inside Rect at time T with
// total probability >= Alpha.
type RangeRequest struct {
	Rect  Rect    `json:"rect"`
	T     int64   `json:"t"`
	Alpha float64 `json:"alpha"`
	Gen   uint64  `json:"-"`
}

// RangeResult is the /v1/range payload.  Degraded marks a lower-bound
// answer: ShardsSkipped live shards (single node) and/or NodesSkipped
// cluster members could not be consulted.
type RangeResult struct {
	Trajs         []int `json:"trajs"`
	Degraded      bool  `json:"degraded,omitempty"`
	ShardsSkipped int   `json:"shardsSkipped,omitempty"`
	NodesSkipped  int   `json:"nodesSkipped,omitempty"`
}

// BatchQuery is one query of a batch; exactly one of Where, When and
// Range must be set, matching Kind ("where", "when" or "range").
type BatchQuery struct {
	Kind  string        `json:"kind"`
	Where *WhereRequest `json:"where,omitempty"`
	When  *WhenRequest  `json:"when,omitempty"`
	Range *RangeRequest `json:"range,omitempty"`
}

// BatchRequest carries the batch; Gen pins every query in it to one
// retained generation (query parameter, like the single-query requests).
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
	Gen     uint64       `json:"-"`
}

// BatchResult is the outcome of one batch query, in request order.  On
// success the field matching the query kind holds the results and Error
// is empty; a query with zero results serializes as {} (empty payloads
// are omitted).  Error carries the failure otherwise, with Code its
// machine-readable classification (same vocabulary as ErrorResponse).
// Degraded marks a range result that skipped quarantined shards or
// nodes and is therefore a lower bound.
type BatchResult struct {
	Where    []WhereResult `json:"where,omitempty"`
	When     []WhenResult  `json:"when,omitempty"`
	Trajs    []int         `json:"trajs,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	Error    string        `json:"error,omitempty"`
	Code     string        `json:"code,omitempty"`
}

// RawPoint is one GPS fix of an ingested trajectory.
type RawPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	T int64   `json:"t"`
}

// RawTrajectory is one raw trajectory submitted for ingestion.
type RawTrajectory struct {
	Points []RawPoint `json:"points"`
}

// IngestRequest carries raw trajectories for the WAL.  With Flush set
// the response is only sent after the batch has been map-matched and
// folded into the store.
type IngestRequest struct {
	Trajectories []RawTrajectory `json:"trajectories"`
	Flush        bool            `json:"flush,omitempty"`
}

// IngestResponse reports the acknowledged batch.  FlushError is set
// (with HTTP 202) when the batch was durably acknowledged but a
// requested synchronous flush failed afterwards: the records are NOT
// lost and the client MUST NOT resubmit them.  Dropped (synchronous
// flush only) lists the batch-relative indices of records that were
// acknowledged but rejected by the map matcher at fold time — they
// consumed a WAL sequence but produced no queryable trajectory, so the
// next accepted record's trajectory id is NOT FirstSeq-relative when the
// list is non-empty.  Trajectories (synchronous flush only) is the
// store's post-flush trajectory count — the cluster router verifies its
// id maps against it before committing an assignment, so a member that
// silently holds records the router never mapped (a lost ack that
// nonetheless applied) is detected instead of mistranslated.  Nodes is
// present only on routed (cluster) ingest, one entry per member that
// received a sub-batch.
type IngestResponse struct {
	Accepted     int                `json:"accepted"`
	FirstSeq     uint64             `json:"firstSeq"`
	Pending      uint64             `json:"pending"`
	Generation   uint64             `json:"generation"`
	Trajectories int                `json:"trajectories,omitempty"`
	FlushError   string             `json:"flushError,omitempty"`
	Dropped      []int              `json:"dropped,omitempty"`
	Nodes        []NodeIngestResult `json:"nodes,omitempty"`
}

// NodeIngestResult is one member's share of a routed ingest batch.
type NodeIngestResult struct {
	Name     string `json:"name"`
	Accepted int    `json:"accepted"`
	FirstSeq uint64 `json:"firstSeq"`
	Error    string `json:"error,omitempty"`
	Code     string `json:"code,omitempty"`
}

// CompactResponse reports a compaction run.
type CompactResponse struct {
	Folded     int    `json:"folded"`
	Generation uint64 `json:"generation"`
}

// IngestStats mirrors the ingestion pipeline's counters on /v1/stats.
// PendingLimit is the server's admission bound (0 = unbounded);
// ReadOnly reports the write path latched off after a WAL failure.
type IngestStats struct {
	Acked        uint64 `json:"acked"`
	Applied      uint64 `json:"applied"`
	Pending      uint64 `json:"pending"`
	PendingLimit int    `json:"pendingLimit"`
	Matched      int64  `json:"matched"`
	Dropped      int64  `json:"dropped"`
	Batches      int64  `json:"batches"`
	Compactions  int64  `json:"compactions"`
	WALBytes     int64  `json:"walBytes"`
	ReadOnly     bool   `json:"readOnly"`
	// Admission-time simplification: the configured SED budget (0:
	// off) and the raw points submitted vs surviving it.
	SimplifyEps float64 `json:"simplifyEps"`
	PointsIn    int64   `json:"pointsIn"`
	PointsKept  int64   `json:"pointsKept"`
}

// EngineStats mirrors the query engine's aggregated counters
// (internal/query.EngineStats) field for field — deliberately untagged,
// so the JSON keys stay the Go field names the /stats payload has
// always used, and the server can convert the internal struct directly.
type EngineStats struct {
	PathsDecoded     int64
	InstancesSkipped int64
	TrajsPruned      int64
	TrajsAccepted    int64

	CacheHits   int64
	CacheMisses int64

	CachedViews int
	CachedPaths int
	CacheBudget int
}

// NodeStats is one cluster member's row in a router's /v1/stats.
type NodeStats struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Trajectories int    `json:"trajectories"`
	Generation   uint64 `json:"generation"`
	Pending      uint64 `json:"pending"`
	Quarantined  bool   `json:"quarantined,omitempty"`
	// Desynced reports the router's ingest-desync latch (see
	// CodeNodeDesynced): reads of mapped ids keep working, routed ingest
	// to this member is refused until a reconcile clears it.
	Desynced bool   `json:"desynced,omitempty"`
	Error    string `json:"error,omitempty"`
}

// ClusterStats is the router's placement/topology section of /v1/stats.
type ClusterStats struct {
	Nodes      []NodeStats `json:"nodes"`
	Partitions int         `json:"partitions"`
	// Holes counts global ids burned by a partially failed routed
	// ingest: they answer unknown_trajectory until re-ingested.
	Holes int `json:"holes"`
}

// SuccinctStats mirrors the StIU succinct-index counters
// (internal/stiu.IndexStats) summed across a store's open shards.
// Zeros when every shard's index is v1 or rebuilt.
type SuccinctStats struct {
	// RegionBlocksDecoded counts region buckets materialized from
	// sidecar bytes; RegionPrunedNoTouch counts pruning probes the
	// occupancy bitvectors answered without decoding anything.
	RegionBlocksDecoded int64 `json:"regionBlocksDecoded"`
	RegionPrunedNoTouch int64 `json:"regionPrunedNoTouch"`
	// TemporalSectionsForced counts per-trajectory temporal sections
	// decoded on first touch.
	TemporalSectionsForced int64 `json:"temporalSectionsForced"`
	// SuccinctBytes is the resident footprint of the rank/select
	// directories themselves.
	SuccinctBytes int64 `json:"succinctBytes"`
}

// StatsResponse is the /v1/stats payload: store shape, aggregated
// engine counters, ingestion state, and server request totals.  Bounds
// and the time span let load generators synthesize valid queries
// without a side channel.
type StatsResponse struct {
	Shards       int    `json:"shards"`
	BaseShards   int    `json:"baseShards"`
	DeltaShards  int    `json:"deltaShards"`
	Tombstones   int    `json:"tombstones"`
	OpenShards   int    `json:"openShards"`
	Trajectories int    `json:"trajectories"`
	Assignment   string `json:"assignment"`
	Generation   uint64 `json:"generation"`
	Compactions  int64  `json:"compactions"`
	TimeMin      int64  `json:"timeMin"`
	TimeMax      int64  `json:"timeMax"`
	Bounds       Rect   `json:"bounds"`

	// DataBounds is the union of the live shards' recorded geometry
	// bounds — what the data actually covers, as opposed to Bounds
	// (the road network's extent).  The cluster router prunes Range
	// fan-out with it.  Inverted (MinX > MaxX) when the store holds no
	// geometry.
	DataBounds Rect `json:"dataBounds"`

	Engine EngineStats `json:"engine"`

	// Memory-serving gauges (PR6): sidecar cache effectiveness and
	// process residency.
	SidecarLoads    int64 `json:"sidecarLoads"`
	SidecarRebuilds int64 `json:"sidecarRebuilds"`
	MappedBytes     int64 `json:"mappedBytes"`
	RSSBytes        int64 `json:"rssBytes"`

	// Succinct reports the v2 sidecars' rank/select layer (PR10): how
	// often pruning answered without decoding anything vs. the blocks
	// and temporal sections actually materialized.
	Succinct SuccinctStats `json:"succinct"`

	// Degradation state (PR7).
	QuarantinedShards int   `json:"quarantinedShards"`
	ShardOpenFailures int64 `json:"shardOpenFailures"`
	Rejected          int64 `json:"rejected"`
	Timeouts          int64 `json:"timeouts"`
	DegradedQueries   int64 `json:"degradedQueries"`

	// Streaming state (PR8).
	Watchers      int64 `json:"watchers"`
	WatchNotifies int64 `json:"watchNotifies"`

	// Ingest is present only when the server was started with an
	// ingester attached.
	Ingest *IngestStats `json:"ingest,omitempty"`

	// Cluster is present only on a router (cmd/utcqr).
	Cluster *ClusterStats `json:"cluster,omitempty"`

	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// WatchUpdate is one /v1/watch/range update.  Added holds the
// trajectories newly eligible since the client's cursor (the full
// result set when Reset is true); the client unions them into its set.
// Gen and Watermark are the next request's ?gen and ?cursor.
type WatchUpdate struct {
	Gen       uint64 `json:"gen"`
	Watermark uint32 `json:"watermark"`
	Added     []int  `json:"added"`
	Reset     bool   `json:"reset,omitempty"`
}

// NodeHealth is one member's row in a router's /healthz.
type NodeHealth struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// Health is the /healthz payload: the process is alive (HTTP 200) as
// long as it answers; Status "degraded" plus the detail fields report
// partial failure.
type Health struct {
	Status            string       `json:"status"`
	QuarantinedShards int          `json:"quarantinedShards,omitempty"`
	ReadOnly          bool         `json:"readOnly,omitempty"`
	Nodes             []NodeHealth `json:"nodes,omitempty"`
}

// ErrorResponse is the v1 error envelope: every non-2xx response of a
// /v1/* endpoint (and /healthz's routing errors) carries it.  Code is
// from the closed vocabulary below — clients switch on it, never on the
// message text.  RetryAfter, when non-zero, duplicates the Retry-After
// header in seconds for clients that cannot reach headers.  The
// envelope is frozen as v1: codes may be added, fields never removed or
// renamed (docs/ARCHITECTURE.md §10.4).
type ErrorResponse struct {
	Code       string `json:"code"`
	Error      string `json:"error"`
	RetryAfter int    `json:"retryAfter,omitempty"`
}

// The v1 error codes.  Temporary() on APIError encodes which of these
// are worth retrying.
const (
	// CodeBadRequest: the request is malformed or semantically invalid;
	// resending it reproduces the failure.
	CodeBadRequest = "bad_request"
	// CodeUnknownTrajectory: the trajectory id is outside the store (or
	// a routed ingest hole); permanent for this id at this generation.
	CodeUnknownTrajectory = "unknown_trajectory"
	// CodeTooLarge: the request exceeds a size limit (body bytes or
	// batch length).
	CodeTooLarge = "too_large"
	// CodeShardQuarantined: the owning shard is failing fast after open
	// failures; retry after backoff.
	CodeShardQuarantined = "shard_quarantined"
	// CodeNodeQuarantined: the owning cluster member is unreachable and
	// quarantined by the router; retry after backoff.
	CodeNodeQuarantined = "node_quarantined"
	// CodeNodeDesynced: the router cannot prove the member's trajectory
	// numbering still matches its id maps (an ingest ack was lost, or a
	// flush failed after acknowledgement, leaving the fold outcome
	// unknown).  The member keeps serving already-mapped trajectories,
	// but routed ingest to it is refused until a count reconcile (or an
	// operator re-sync) clears the latch.  Do NOT blindly resubmit the
	// affected slice: its records may already be durable on the member.
	CodeNodeDesynced = "node_desynced"
	// CodeReadOnly: the write path latched read-only after a WAL
	// failure; reads keep working.
	CodeReadOnly = "read_only"
	// CodeBacklog: ingest admission shed the batch (pending limit);
	// nothing was acknowledged, retry after backoff.
	CodeBacklog = "backlog"
	// CodeTimeout: the query was abandoned at the server's evaluation
	// budget.
	CodeTimeout = "timeout"
	// CodeGenRetired: the pinned generation is older than the retention
	// window; re-query at the current generation, do not retry.
	CodeGenRetired = "gen_retired"
	// CodeGenUnknown: the pinned generation is beyond the current one.
	CodeGenUnknown = "gen_unknown"
	// CodeIngestDisabled: the server runs without a WAL; ingest is not
	// available here at all.
	CodeIngestDisabled = "ingest_disabled"
	// CodeNotLeader: this node is a replication follower; submit writes
	// to the leader.
	CodeNotLeader = "not_leader"
	// CodeWALTruncated: the requested replication position was
	// checkpointed away; the follower must re-snapshot.
	CodeWALTruncated = "wal_truncated"
	// CodeUnsupported: the endpoint exists but this deployment does not
	// serve it (e.g. watch subscriptions through the router).
	CodeUnsupported = "unsupported"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal = "internal"
)
