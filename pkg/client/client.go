package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Default retry policy, matching what loadgen historically hand-rolled.
const (
	defaultRetryAttempts = 5
	defaultRetryBase     = 50 * time.Millisecond
	defaultRetryCap      = 2 * time.Second
)

// maxResponseBytes bounds how much of a response body the client will
// buffer; mirrors the server's own request cap.
const maxResponseBytes = 64 << 20

// ErrRetriesExhausted wraps the last failure once the retry budget is
// spent; test with errors.Is.  errors.As against *APIError still
// recovers the final server error.
var ErrRetriesExhausted = errors.New("retries exhausted")

// APIError is a non-2xx response, decoded from the v1 error envelope
// when the server sent one (plain bodies from proxies or pre-envelope
// servers degrade to Code "" and the raw text as Message).
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable classification (the Code* constants),
	// or "" when the response carried no envelope.
	Code string
	// Message is the human-readable error text.
	Message string
	// RetryAfter is the server's requested backoff (from the
	// Retry-After header or the envelope), 0 if absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
}

// Temporary reports whether retrying the same request can succeed.  It
// switches on the error code first — backlog shedding, quarantined
// shards/nodes, a read-only latch and timeouts are transient; malformed
// requests, unknown trajectories, retired generations, ingest-disabled
// and not-leader are not, whatever their status.  Without a code it
// falls back to the status-class heuristic (429 or 5xx).
func (e *APIError) Temporary() bool {
	switch e.Code {
	case CodeBacklog, CodeShardQuarantined, CodeNodeQuarantined, CodeReadOnly, CodeTimeout, CodeInternal:
		return true
	case CodeBadRequest, CodeUnknownTrajectory, CodeTooLarge, CodeGenRetired, CodeGenUnknown,
		CodeIngestDisabled, CodeNotLeader, CodeWALTruncated, CodeUnsupported, CodeNotFound:
		return false
	}
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// CodeNotFound: the named resource does not exist (e.g. a replication
// artifact already garbage-collected).  Declared here with the other
// codes' semantics; kept separate so types.go lists only the
// query-plane vocabulary first.
const CodeNotFound = "not_found"

// Options configures a Client.  The zero value is usable.
type Options struct {
	// HTTPClient is the underlying transport; defaults to a client
	// without a global timeout (per-call contexts govern deadlines —
	// watch long-polls legitimately run for minutes).
	HTTPClient *http.Client
	// RetryAttempts is the total number of tries (default 5).
	// 1 disables retry.
	RetryAttempts int
	// RetryBase and RetryCap bound the exponential backoff between
	// tries (defaults 50ms and 2s).  The delay for attempt k is
	// min(RetryBase<<k, RetryCap) halved plus jitter; a longer
	// server-sent Retry-After wins.
	RetryBase time.Duration
	RetryCap  time.Duration
	// OnRetry, when set, observes each scheduled retry.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// Client talks to one utcqd or utcqr base URL.  It is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opts Options
}

// New builds a Client for baseURL (e.g. "http://127.0.0.1:8723").
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.RetryAttempts <= 0 {
		opts.RetryAttempts = defaultRetryAttempts
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = defaultRetryBase
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = defaultRetryCap
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: opts.HTTPClient, opts: opts}
}

// BaseURL returns the base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// Where runs a probabilistic where-query (paper Def. 10).
func (c *Client) Where(ctx context.Context, req WhereRequest) ([]WhereResult, error) {
	var resp struct {
		Results []WhereResult `json:"results"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/where", genQuery(req.Gen), req, &resp, true); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// When runs a probabilistic when-query (paper Def. 11).
func (c *Client) When(ctx context.Context, req WhenRequest) ([]WhenResult, error) {
	var resp struct {
		Results []WhenResult `json:"results"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/when", genQuery(req.Gen), req, &resp, true); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Range runs a probabilistic range-query (paper Def. 12).  Check
// Degraded before treating the answer as complete.
func (c *Client) Range(ctx context.Context, req RangeRequest) (RangeResult, error) {
	var resp RangeResult
	err := c.do(ctx, http.MethodPost, "/v1/range", genQuery(req.Gen), req, &resp, true)
	return resp, err
}

// Batch runs a mixed batch; results come back in request order with
// per-query errors in-band.
func (c *Client) Batch(ctx context.Context, req BatchRequest) ([]BatchResult, error) {
	var resp struct {
		Results []BatchResult `json:"results"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/batch", genQuery(req.Gen), req, &resp, true); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Ingest submits raw trajectories.  The call is NOT idempotent:
// transport failures are returned immediately (the batch may or may not
// have been acknowledged server-side) and only a backlog rejection —
// which acknowledges nothing — is retried.
func (c *Client) Ingest(ctx context.Context, trajs []RawTrajectory, flush bool) (IngestResponse, error) {
	var resp IngestResponse
	err := c.do(ctx, http.MethodPost, "/v1/ingest", nil, IngestRequest{Trajectories: trajs, Flush: flush}, &resp, false)
	return resp, err
}

// Compact asks the server to fold delta shards into their base shards.
func (c *Client) Compact(ctx context.Context) (CompactResponse, error) {
	var resp CompactResponse
	err := c.do(ctx, http.MethodPost, "/v1/compact", nil, nil, &resp, true)
	return resp, err
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, nil, &resp, true)
	return resp, err
}

// Health fetches /healthz.  Both "ok" and "degraded" are HTTP 200, so a
// degraded report is a nil-error return with Status "degraded".
func (c *Client) Health(ctx context.Context) (Health, error) {
	var resp Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, &resp, true)
	return resp, err
}

func genQuery(gen uint64) url.Values {
	if gen == 0 {
		return nil
	}
	return url.Values{"gen": []string{strconv.FormatUint(gen, 10)}}
}

// do runs one logical API call with the retry policy.  A non-idempotent
// call (ingest) returns transport errors immediately — the request may
// have been applied — and status-retries only CodeBacklog, which
// guarantees nothing was acknowledged.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("marshal request: %w", err)
		}
	}
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		var retryAfter time.Duration
		err := c.once(ctx, method, u, body, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
		var ae *APIError
		if errors.As(err, &ae) {
			retryAfter = ae.RetryAfter
			if !ae.Temporary() {
				return err
			}
			if !idempotent && ae.Code != CodeBacklog {
				return err
			}
		} else if !idempotent {
			// Transport error on a non-idempotent call: the server may
			// have processed the request; resending could duplicate it.
			return err
		}
		if attempt+1 >= c.opts.RetryAttempts {
			return fmt.Errorf("%w: giving up after %d attempts: %w", ErrRetriesExhausted, c.opts.RetryAttempts, lastErr)
		}
		delay := c.backoff(attempt, retryAfter)
		if c.opts.OnRetry != nil {
			c.opts.OnRetry(attempt+1, lastErr, delay)
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// once performs a single HTTP exchange.
func (c *Client) once(ctx context.Context, method, u string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
		return nil
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// decodeAPIError reads a non-2xx response into an APIError, preferring
// the v1 envelope and falling back to the raw body text.
func decodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env ErrorResponse
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		ae.Code, ae.Message = env.Code, env.Error
		if ae.RetryAfter == 0 && env.RetryAfter > 0 {
			ae.RetryAfter = time.Duration(env.RetryAfter) * time.Second
		}
		return ae
	}
	ae.Message = strings.TrimSpace(string(raw))
	if ae.Message == "" {
		ae.Message = http.StatusText(resp.StatusCode)
	}
	return ae
}

// backoff computes the sleep before retry #attempt+1: exponential with
// a cap, halved with jitter to decorrelate clients, and never shorter
// than a server-sent Retry-After.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	delay := c.opts.RetryBase << attempt
	if delay > c.opts.RetryCap || delay <= 0 {
		delay = c.opts.RetryCap
	}
	half := delay / 2
	delay = half + time.Duration(rand.Int64N(int64(half)+1))
	if retryAfter > delay {
		delay = retryAfter
	}
	return delay
}
