package client_test

// The client is tested against a live in-process utcqd server (the real
// handler stack, not a mock), so every assertion covers the wire contract
// end to end: request encoding, the v1 error envelope, retry/backoff
// behavior and the watch resume protocol.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"utcq"
	"utcq/pkg/client"
)

// fixture is one live server over a small CD-profile store, with a
// reference engine for expected query answers.
type fixture struct {
	ds      *utcq.Dataset
	eng     *utcq.Engine
	handler http.Handler
	ts      *httptest.Server
	c       *client.Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p := utcq.ProfileCD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := utcq.BuildDataset(p, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := utcq.Compress(ds.Graph, ds.Trajectories, utcq.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := utcq.BuildIndex(arch, utcq.DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := utcq.BuildStore(ds.Graph, ds.Trajectories, utcq.DefaultStoreOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	srv := utcq.NewQueryServer(st, utcq.QueryServerOptions{MaxBatch: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &fixture{ds: ds, eng: utcq.NewEngine(arch, idx), handler: srv.Handler(), ts: ts,
		c: client.New(ts.URL, client.Options{})}
}

func (f *fixture) midTime(j int) int64 {
	T := f.ds.Trajectories[j].T
	return (T[0] + T[len(T)-1]) / 2
}

func TestWhereWhenRangeRoundTrip(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	j, tq := 0, f.midTime(0)

	got, err := f.c.Where(ctx, client.WhereRequest{Traj: j, T: tq, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.eng.Where(j, tq, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("where: %d results, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Inst != want[i].Inst || r.P != want[i].P ||
			r.Edge != int(want[i].Loc.Edge) || r.NDist != want[i].Loc.NDist {
			t.Fatalf("where result %d = %+v, want %+v", i, r, want[i])
		}
	}
	if len(got) == 0 {
		t.Fatal("where returned nothing; pick a better fixture time")
	}

	loc := client.Position{Edge: got[0].Edge, NDist: got[0].NDist}
	gw, err := f.c.When(ctx, client.WhenRequest{Traj: j, Loc: loc, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ww, err := f.eng.When(j, utcq.Position{Edge: utcq.EdgeID(loc.Edge), NDist: loc.NDist}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gw) != len(ww) {
		t.Fatalf("when: %d results, want %d", len(gw), len(ww))
	}

	b := f.ds.Graph.Bounds()
	rect := client.Rect{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}
	rr, err := f.c.Range(ctx, client.RangeRequest{Rect: rect, T: tq, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Degraded {
		t.Fatal("healthy store answered degraded")
	}
	if len(rr.Trajs) == 0 {
		t.Fatal("full-bounds range at a covered instant returned nothing")
	}

	// The batch endpoint answers each query exactly like its dedicated
	// endpoint.
	results, err := f.c.Batch(ctx, client.BatchRequest{Queries: []client.BatchQuery{
		{Kind: "where", Where: &client.WhereRequest{Traj: j, T: tq, Alpha: 0.1}},
		{Kind: "range", Range: &client.RangeRequest{Rect: rect, T: tq, Alpha: 0.01}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("batch: %d results, want 2", len(results))
	}
	if len(results[0].Where) != len(got) {
		t.Fatalf("batch where: %d results, want %d", len(results[0].Where), len(got))
	}
	if len(results[1].Trajs) != len(rr.Trajs) {
		t.Fatalf("batch range: %d trajs, want %d", len(results[1].Trajs), len(rr.Trajs))
	}
}

func TestStatsAndHealth(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	st, err := f.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trajectories != 25 {
		t.Fatalf("stats: %d trajectories, want 25", st.Trajectories)
	}
	if st.DataBounds.MinX > st.DataBounds.MaxX {
		t.Fatalf("stats: empty dataBounds %+v on a populated store", st.DataBounds)
	}
	if st.Cluster != nil {
		t.Fatal("single-node stats carries a cluster section")
	}
	h, err := f.c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health: %q, want ok", h.Status)
	}
}

func TestErrorEnvelopeCodes(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	// Unknown trajectory: 400, machine-readable code, not retried.
	_, err := f.c.Where(ctx, client.WhereRequest{Traj: 10_000, T: f.midTime(0)})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *client.APIError, got %v", err)
	}
	if ae.Status != http.StatusBadRequest || ae.Code != client.CodeUnknownTrajectory {
		t.Fatalf("got status %d code %q, want 400 %q", ae.Status, ae.Code, client.CodeUnknownTrajectory)
	}
	if ae.Temporary() {
		t.Fatal("unknown_trajectory claims to be temporary")
	}

	// Oversized batch: 413 too_large.
	big := make([]client.BatchQuery, 9)
	for i := range big {
		big[i] = client.BatchQuery{Kind: "where", Where: &client.WhereRequest{Traj: 0, T: f.midTime(0)}}
	}
	_, err = f.c.Batch(ctx, client.BatchRequest{Queries: big})
	if !errors.As(err, &ae) || ae.Status != http.StatusRequestEntityTooLarge || ae.Code != client.CodeTooLarge {
		t.Fatalf("oversized batch: got %v, want 413 %s", err, client.CodeTooLarge)
	}

	// Ingest against a server without a WAL: 503 ingest_disabled — a
	// deployment mistake, not a transient, so the client must not retry.
	_, err = f.c.Ingest(ctx, []client.RawTrajectory{{Points: []client.RawPoint{{T: 1}, {T: 2}}}}, false)
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.Code != client.CodeIngestDisabled {
		t.Fatalf("ingest without WAL: got %v, want 503 %s", err, client.CodeIngestDisabled)
	}
	if ae.Temporary() {
		t.Fatal("ingest_disabled claims to be temporary")
	}
}

// flakyProxy fails the first n matching requests with status (and a v1
// envelope), then forwards everything to the inner handler.
type flakyProxy struct {
	inner     http.Handler
	status    int
	code      string
	remaining atomic.Int32
	hits      atomic.Int32
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.hits.Add(1)
	if p.remaining.Add(-1) >= 0 {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(p.status)
		json.NewEncoder(w).Encode(client.ErrorResponse{Code: p.code, Error: "injected"})
		return
	}
	p.inner.ServeHTTP(w, r)
}

func TestRetriesTransientFailures(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	for _, tc := range []struct {
		name   string
		status int
		code   string
	}{
		{"backlog-429", http.StatusTooManyRequests, client.CodeBacklog},
		{"quarantine-503", http.StatusServiceUnavailable, client.CodeShardQuarantined},
	} {
		t.Run(tc.name, func(t *testing.T) {
			proxy := &flakyProxy{inner: f.handler, status: tc.status, code: tc.code}
			proxy.remaining.Store(2)
			ts := httptest.NewServer(proxy)
			defer ts.Close()

			var retries atomic.Int32
			c := client.New(ts.URL, client.Options{
				RetryAttempts: 5,
				RetryBase:     time.Millisecond,
				RetryCap:      5 * time.Millisecond,
				OnRetry:       func(int, error, time.Duration) { retries.Add(1) },
			})
			got, err := c.Where(ctx, client.WhereRequest{Traj: 0, T: f.midTime(0), Alpha: 0.1})
			if err != nil {
				t.Fatalf("query through flaky proxy: %v", err)
			}
			if len(got) == 0 {
				t.Fatal("flaky proxy eventually answered, but with nothing")
			}
			if r := retries.Load(); r != 2 {
				t.Fatalf("client retried %d times, want 2", r)
			}
		})
	}
}

func TestGivesUpAfterRetryBudget(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(client.ErrorResponse{Code: client.CodeShardQuarantined, Error: "injected"})
	}))
	defer always.Close()
	c := client.New(always.URL, client.Options{
		RetryAttempts: 3, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond,
	})
	_, err := c.Where(context.Background(), client.WhereRequest{Traj: 0, T: 1})
	if !errors.Is(err, client.ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != client.CodeShardQuarantined {
		t.Fatalf("exhausted error should still carry the last APIError, got %v", err)
	}
}

func TestIngestNotRetriedOnServerError(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(client.ErrorResponse{Code: client.CodeInternal, Error: "injected"})
	}))
	defer srv.Close()
	c := client.New(srv.URL, client.Options{RetryAttempts: 5, RetryBase: time.Millisecond})
	_, err := c.Ingest(context.Background(),
		[]client.RawTrajectory{{Points: []client.RawPoint{{T: 1}, {T: 2}}}}, false)
	if err == nil {
		t.Fatal("ingest against a 500 server succeeded")
	}
	// A 500 mid-ingest may or may not have durably acknowledged the batch;
	// blind re-send would double-ingest, so exactly one attempt is allowed.
	if h := hits.Load(); h != 1 {
		t.Fatalf("non-idempotent ingest was sent %d times, want 1", h)
	}
}

// TestWatchResumeAcrossFailure drives the full streaming path: subscribe,
// ingest through the client, receive the incremental update — with an
// injected 503 on the resume poll, which the client must absorb by
// retrying from the same cursor.
func TestWatchResumeAcrossFailure(t *testing.T) {
	p := utcq.ProfileCD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := utcq.GenerateRaws(p, 18, 5)
	if err != nil {
		t.Fatal(err)
	}
	matcher := utcq.NewMatcher(g, p.Match)
	var base []*utcq.Uncertain
	for _, raw := range raws[:6] {
		if u, err := matcher.Match(raw); err == nil {
			base = append(base, u)
		}
	}
	if len(base) == 0 {
		t.Fatal("no seed trajectories matched")
	}
	st, err := utcq.BuildStore(g, base, utcq.DefaultStoreOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	ing, err := utcq.NewIngester(st, eix, filepath.Join(t.TempDir(), "ingest.wal"),
		utcq.IngestOptions{Match: p.Match, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	srv := utcq.NewQueryServer(st, utcq.QueryServerOptions{Ingester: ing})

	// failNext arms a one-shot 503 on the next watch request.
	var failNext atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/watch/range" && failNext.CompareAndSwap(true, false) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(client.ErrorResponse{Code: client.CodeShardQuarantined, Error: "injected"})
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	var retries atomic.Int32
	c := client.New(ts.URL, client.Options{
		RetryAttempts: 4,
		RetryBase:     time.Millisecond,
		RetryCap:      5 * time.Millisecond,
		OnRetry:       func(int, error, time.Duration) { retries.Add(1) },
	})
	ctx := context.Background()
	b := g.Bounds()
	req := client.WatchRequest{
		Rect:        client.Rect{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY},
		T:           raws[0].Points[len(raws[0].Points)/2].T,
		Alpha:       0.1,
		PollSeconds: 5,
	}
	w := c.Watch(req)
	first, err := w.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Reset {
		t.Fatal("first watch exchange was not a reset")
	}
	union := map[int]bool{}
	for _, j := range first.Added {
		union[j] = true
	}

	// Feed the rest of the fleet through the client's own ingest call.
	var batch []client.RawTrajectory
	for _, raw := range raws[6:] {
		ct := client.RawTrajectory{}
		for _, pt := range raw.Points {
			ct.Points = append(ct.Points, client.RawPoint{X: pt.X, Y: pt.Y, T: pt.T})
		}
		batch = append(batch, ct)
	}
	resp, err := c.Ingest(ctx, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != len(batch) {
		t.Fatalf("ingest accepted %d of %d", resp.Accepted, len(batch))
	}

	// The resume poll rides through an injected 503 without losing the
	// cursor: the next successful exchange is incremental, not a reset.
	failNext.Store(true)
	upd, err := w.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if retries.Load() == 0 {
		t.Fatal("watch resume never saw the injected failure")
	}
	if upd.Reset {
		t.Fatal("resume after failure lost the cursor (got a reset)")
	}
	if upd.Gen <= first.Gen {
		t.Fatalf("update generation %d did not advance past %d", upd.Gen, first.Gen)
	}
	for _, j := range upd.Added {
		union[j] = true
	}

	// Streaming invariant: union of updates == fresh full subscription.
	full, err := c.Watch(req).Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Added) != len(union) {
		t.Fatalf("union has %d trajs, full requery %d", len(union), len(full.Added))
	}
	for _, j := range full.Added {
		if !union[j] {
			t.Fatalf("full requery has traj %d the union is missing", j)
		}
	}
}

// TestGenPinnedQuery exercises the ?gen= query parameter end to end: a
// pinned request to a live generation succeeds, a future generation is
// 404 gen_unknown.
func TestGenPinnedQuery(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	st, err := f.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.c.Where(ctx, client.WhereRequest{Traj: 0, T: f.midTime(0), Alpha: 0.1, Gen: st.Generation}); err != nil {
		t.Fatalf("pin to current generation: %v", err)
	}
	_, err = f.c.Where(ctx, client.WhereRequest{Traj: 0, T: f.midTime(0), Gen: st.Generation + 100})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != client.CodeGenUnknown {
		t.Fatalf("future generation pin: got %v, want %s", err, client.CodeGenUnknown)
	}
}
