// Command experiments regenerates the paper's tables and figures on the
// synthetic DK/CD/HZ datasets.
//
// Usage:
//
//	experiments -exp table8            # one experiment
//	experiments -exp all -scale 0.5    # everything, half-size datasets
//
// Experiment names: table5 table6 fig4a fig4b table8 fig6 fig7 fig8 fig9
// fig10 fig11 fig12.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"utcq/internal/exp"
)

func main() {
	name := flag.String("exp", "all", "experiment to run: "+strings.Join(exp.Experiments, ", ")+" or all")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = defaults)")
	seed := flag.Int64("seed", 42, "generation seed")
	parallel := flag.Int("parallel", 1, "compression worker count (1 = the paper's serial measurement model, 0 = one per CPU)")
	flag.Parse()

	cfg := exp.Config{Scale: *scale, Seed: *seed, Parallelism: *parallel}
	if err := exp.Run(os.Stdout, *name, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
