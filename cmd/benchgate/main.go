// Command benchgate compares two `go test -bench` outputs — the PR and its
// merge-base — and fails when a pinned hot-path benchmark regressed past a
// threshold.  It is the enforcement half of the CI bench-gate job (the
// human-readable half is the benchstat table archived next to it).
//
// Usage:
//
//	go test -bench 'Where|Range|CompressOne' -count 5 . > pr.txt       # on the PR
//	git worktree add /tmp/base $(git merge-base origin/main HEAD)
//	(cd /tmp/base && go test -bench ... -count 5 .) > base.txt
//	go run ./cmd/benchgate -old base.txt -new pr.txt -max-regress 15
//
// Repeated -count runs of one benchmark reduce to their median ns/op, so a
// single noisy run cannot fake or mask a regression.  Benchmarks present
// on only one side are reported but never fail the gate (new benchmarks
// have no baseline; deleted ones have no PR run).
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"utcq/internal/benchfmt"
)

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lines, err := benchfmt.Parse(f)
	if err != nil {
		return nil, err
	}
	return benchfmt.MedianNsPerOp(lines), nil
}

func main() {
	oldPath := flag.String("old", "", "bench output of the baseline (merge-base)")
	newPath := flag.String("new", "", "bench output of the candidate (PR)")
	pin := flag.String("pin", ".", "regexp of benchmark names the gate enforces")
	maxRegress := flag.Float64("max-regress", 15, "maximum allowed ns/op regression in percent on pinned benchmarks")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	pinRe, err := regexp.Compile(*pin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -pin: %v\n", err)
		os.Exit(2)
	}
	oldMed, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newMed, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newMed))
	for name := range newMed {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	pinned := 0
	fmt.Printf("%-44s %14s %14s %9s\n", "benchmark (median ns/op)", "old", "new", "delta")
	for _, name := range names {
		nv := newMed[name]
		ov, ok := oldMed[name]
		if !ok {
			fmt.Printf("%-44s %14s %14.1f %9s\n", name, "-", nv, "new")
			continue
		}
		delta := 0.0
		if ov > 0 {
			delta = (nv - ov) / ov * 100
		}
		mark := ""
		if pinRe.MatchString(name) {
			pinned++
			if delta > *maxRegress {
				mark = "  << REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%%, limit %+.1f%%)", name, ov, nv, delta, *maxRegress))
			}
		}
		fmt.Printf("%-44s %14.1f %14.1f %+8.1f%%%s\n", name, ov, nv, delta, mark)
	}
	for name := range oldMed {
		if _, ok := newMed[name]; !ok {
			fmt.Printf("%-44s %14.1f %14s %9s\n", name, oldMed[name], "-", "gone")
		}
	}

	if pinned == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark matched the pinned pattern %q — the gate guarded nothing\n", *pin)
		os.Exit(2)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d pinned benchmark(s) regressed past %.0f%%:\n", len(failures), *maxRegress)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: %d pinned benchmark(s) within the %.0f%% budget\n", pinned, *maxRegress)
}
