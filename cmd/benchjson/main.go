// Command benchjson converts `go test -bench` output into a JSON perf
// record (benchmark name → ns/op, B/op, allocs/op and any custom metrics),
// the format the CI bench job archives as BENCH_<tag>.json so successive
// PRs leave a comparable perf trajectory.
//
// Usage:
//
//	go test -bench=. -benchmem -count=1 ./... | go run ./cmd/benchjson -out BENCH_PR4.json
//	BENCH_TAG=PR4 go run ./cmd/benchjson -in bench.txt   # writes BENCH_PR4.json
//
// With neither -out nor BENCH_TAG set the record goes to stdout.  The CI
// job derives BENCH_TAG from the pull-request number, so the workflow
// never hardcodes a PR name.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"utcq/internal/benchfmt"
)

func main() {
	in := flag.String("in", "-", "bench output file (- for stdin)")
	out := flag.String("out", "", "JSON output file (default: BENCH_<$BENCH_TAG>.json, or stdout without a tag)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	lines, err := benchfmt.Parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	// Later lines win, matching the old behavior for -count > 1 runs.
	// benchfmt.Result carries the record's JSON tags; the name becomes the
	// map key.
	results := make(map[string]benchfmt.Result, len(lines))
	for _, l := range lines {
		results[l.Name] = l
	}

	path := *out
	if path == "" {
		if tag := os.Getenv("BENCH_TAG"); tag != "" {
			path = fmt.Sprintf("BENCH_%s.json", tag)
		}
	}

	// json.Marshal sorts map keys, so the output diffs cleanly across runs.
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if path == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)
}
