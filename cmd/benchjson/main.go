// Command benchjson converts `go test -bench` output into a JSON perf
// record (benchmark name → ns/op, B/op, allocs/op and any custom metrics),
// the format the CI bench job archives as BENCH_<tag>.json so successive
// PRs leave a comparable perf trajectory.
//
// Usage:
//
//	go test -bench=. -benchmem -count=1 ./... | go run ./cmd/benchjson -out BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is the recorded measurement of one benchmark.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimSuffix(m[1], "-"+lastCPUSuffix(m[1]))
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// lastCPUSuffix returns the trailing GOMAXPROCS decoration ("8" in
// "BenchmarkFoo-8") so names stay stable across machines.
func lastCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	suf := name[i+1:]
	if _, err := strconv.Atoi(suf); err != nil {
		return ""
	}
	return suf
}

func main() {
	in := flag.String("in", "-", "bench output file (- for stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	results, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}

	// json.Marshal sorts map keys, so the output diffs cleanly across runs.
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
