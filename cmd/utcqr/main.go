// Command utcqr routes the utcqd HTTP API across a cluster of member
// nodes: point queries (where/when) go to the member a consistent-hash
// placement assigns the trajectory, range queries scatter-gather across
// members (pruned by each member's data bounds, merged deterministically),
// and ingest splits a batch by placement so every member stays the owner
// of exactly its share of the global id space.
//
// Members are plain utcqd processes started with matching
// -cluster-node/-cluster-nodes/-cluster-partitions flags; the router holds
// no durable state of its own — it rebuilds the id maps from member stats
// at startup and refuses to serve until every member is reachable, idle
// and consistent with the placement.
//
// Usage:
//
//	utcqd -addr :8801 -profile CD -n 900 -cluster-node 0 -cluster-nodes 3 -wal w0.wal &
//	utcqd -addr :8802 -profile CD -n 900 -cluster-node 1 -cluster-nodes 3 -wal w1.wal &
//	utcqd -addr :8803 -profile CD -n 900 -cluster-node 2 -cluster-nodes 3 -wal w2.wal &
//	utcqr -addr :8800 -members http://localhost:8801,http://localhost:8802,http://localhost:8803
//
// Clients speak to the router exactly as to a single utcqd (same
// endpoints, same bodies, same error envelope); /v1/stats additionally
// carries a "cluster" section with per-node detail, and /healthz reports
// "degraded" while any member is quarantined.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"utcq/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("utcqr: ")
	addr := flag.String("addr", ":8800", "listen address")
	members := flag.String("members", "", "comma-separated member base URLs in placement order (required)")
	partitions := flag.Int("partitions", cluster.DefaultPartitions, "placement partitions (must match the members' -cluster-partitions)")
	parallel := flag.Int("parallel", 0, "scatter-gather worker count (0 = one per CPU)")
	maxBatch := flag.Int("max-batch", 0, "maximum queries per /v1/batch request (0 = default)")
	syncTimeout := flag.Duration("sync-timeout", 60*time.Second, "how long to wait for all members to come up at startup")
	refresh := flag.Duration("refresh", 2*time.Second, "member stats refresh cadence (bounds pruning, quarantine healing)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	var ms []cluster.Member
	for i, u := range strings.Split(*members, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		ms = append(ms, cluster.Member{Name: cluster.NodeNames(i + 1)[i], URL: u})
	}
	if len(ms) == 0 {
		log.Fatal("-members is required (comma-separated base URLs)")
	}

	rt := cluster.NewRouter(ms, cluster.RouterOptions{
		Partitions:   *partitions,
		Parallelism:  *parallel,
		MaxBatch:     *maxBatch,
		RefreshEvery: *refresh,
	})

	// Members may still be building their datasets; retry the sync until
	// the budget runs out so "start everything at once" just works.
	sctx, scancel := context.WithTimeout(context.Background(), *syncTimeout)
	for {
		err := rt.Sync(sctx)
		if err == nil {
			break
		}
		select {
		case <-sctx.Done():
			log.Fatalf("cluster sync: %v", err)
		case <-time.After(time.Second):
		}
	}
	scancel()
	log.Printf("synced %d members, %d trajectories, %d partitions", len(ms), rt.NumTrajectories(), *partitions)
	rt.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("routing on %s", *addr)
		done <- rt.ListenAndServe(*addr)
	}()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutting down (drain %s)", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := rt.Shutdown(dctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		<-done
		log.Printf("bye")
	}
}
