// Command utcqd serves probabilistic trajectory queries over HTTP: it
// builds (or opens) a sharded compressed store and exposes the where /
// when / range queries, a batched endpoint, /healthz and /stats.
//
// A synthetic dataset is generated from the profile flags, compressed into
// -shards archives and served; with -dir the store round-trips through
// disk: the first run builds and saves it, later runs open it lazily (only
// the manifest is read until a query touches a shard).
//
// With -wal the server also accepts live traffic: POST /v1/ingest
// acknowledges raw trajectories into an append-only, CRC-framed
// write-ahead log, a background worker map-matches and compresses them
// into delta shards, and accumulated deltas fold into base shards — via
// POST /v1/compact or automatically every -compact-after delta shards.
// After a crash, acknowledged-but-unapplied records replay from the WAL.
//
// Cluster modes (see docs/ARCHITECTURE.md §10): -cluster-node/-cluster-nodes
// filter the built dataset down to the trajectories a placement assigns this
// member, so N members behind a cmd/utcqr router jointly serve the full
// dataset; -follow runs the process as a replication follower that
// bootstraps a snapshot from a leader and replays its WAL (reads only —
// /v1/ingest answers 503 not_leader).
//
// Usage:
//
//	utcqd -addr :8723 -profile CD -n 500 -shards 4
//	utcqd -addr :8723 -profile CD -n 500 -shards 4 -dir /var/lib/utcq/cd500
//	utcqd -addr :8723 -profile CD -dir /var/lib/utcq/cd500 -wal /var/lib/utcq/cd500/ingest.wal
//	utcqd -addr :8724 -profile CD -n 500 -cluster-node 1 -cluster-nodes 3
//	utcqd -addr :8725 -profile CD -dir /var/lib/utcq/replica -follow http://leader:8723
//
// Endpoints (see README "Serving" for request/response bodies):
//
//	POST /v1/where   POST /v1/when   POST /v1/range   POST /v1/batch
//	POST /v1/ingest  POST /v1/compact
//	GET  /healthz    GET  /stats
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain, then drains pending ingestion and closes the
// WAL.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"utcq/internal/cluster"
	"utcq/internal/gen"
	"utcq/internal/ingest"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/server"
	"utcq/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("utcqd: ")
	addr := flag.String("addr", ":8723", "listen address")
	profile := flag.String("profile", "CD", "dataset profile: DK, CD or HZ")
	n := flag.Int("n", 300, "number of uncertain trajectories")
	seed := flag.Int64("seed", 1, "generation seed")
	shards := flag.Int("shards", 4, "number of store shards")
	assignFlag := flag.String("assign", "hash", "shard assignment: hash or spatial")
	dir := flag.String("dir", "", "store directory (open if it holds a manifest, else build and save)")
	parallel := flag.Int("parallel", 0, "build/scatter worker count (0 = one per CPU)")
	cacheEntries := flag.Int("cache", 0, "per-shard engine cache budget in entries (0 = default)")
	maxBatch := flag.Int("max-batch", 0, "maximum queries per /v1/batch request (0 = default)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request query evaluation budget; requests past it answer 504 (<0 disables)")
	maxPending := flag.Int("max-pending", 0, "ingest admission limit: pending WAL records past which /v1/ingest answers 429 (0 = default 4096, <0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	wal := flag.String("wal", "", "write-ahead log path: enables live ingestion via POST /v1/ingest")
	ingestBatch := flag.Int("ingest-batch", 32, "max WAL records per delta shard")
	compactAfter := flag.Int("compact-after", 8, "fold delta shards into a base shard past this count (0 = default 8, <0 disables)")
	flushEvery := flag.Duration("flush-every", time.Second, "background drain interval for partial ingest batches")
	simplifyEps := flag.Float64("simplify-eps", 0, "online simplification SED budget in map units applied at ingest admission (0 disables)")
	follow := flag.String("follow", "", "leader base URL: run as a replication follower of that utcqd (requires -dir; clients get reads only)")
	clusterNode := flag.Int("cluster-node", -1, "this member's index in a cluster placement: keep only the trajectories the placement assigns it (requires -cluster-nodes)")
	clusterNodes := flag.Int("cluster-nodes", 0, "total cluster member count for -cluster-node filtering (0 = not a cluster member)")
	clusterPartitions := flag.Int("cluster-partitions", cluster.DefaultPartitions, "cluster placement partitions (must match the router's -partitions)")
	flag.Parse()

	p, err := gen.ProfileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	assignment, err := store.ParseAssignment(*assignFlag)
	if err != nil {
		log.Fatal(err)
	}
	engOpts := query.EngineOptions{CacheEntries: *cacheEntries}

	if *follow != "" {
		if *dir == "" {
			log.Fatal("-follow requires -dir (the follower's snapshot directory)")
		}
		g := roadnetFor(p)
		log.Printf("following %s into %s (profile %s network)", *follow, *dir, p.Name)
		fol, err := cluster.StartFollower(*follow, cluster.FollowerOptions{
			Dir:       *dir,
			Graph:     g,
			EdgeIndex: roadnet.NewEdgeIndex(g, 4*p.Network.Spacing),
			Ingest: ingest.Options{
				BatchSize:    *ingestBatch,
				FlushEvery:   *flushEvery,
				Match:        p.Match,
				Parallelism:  *parallel,
				CompactEvery: *compactAfter,
			},
			Open: store.OpenOptions{Engine: engOpts, Parallelism: *parallel},
		})
		if err != nil {
			log.Fatal(err)
		}
		srv := server.New(fol.Store(), server.Options{
			MaxBatch:         *maxBatch,
			BatchParallelism: *parallel,
			QueryTimeout:     *queryTimeout,
			Ingester:         fol.Ingester(),
			Follower:         true,
		})
		serveUntilSignal(srv, *addr, *drain, func() {
			if err := fol.Close(); err != nil {
				log.Printf("warning: follower close: %v", err)
			}
		})
		return
	}

	var st *store.Store
	var g *roadnet.Graph
	if *dir != "" && manifestExists(*dir) {
		// The graph regenerates deterministically from the profile; the
		// compressed shards come from disk, lazily.
		log.Printf("opening store %s (profile %s network)", *dir, p.Name)
		g = roadnetFor(p)
		// OpenOptions.Core stays zero: delta-shard compression parameters
		// derive from the persisted shard archives, so ingestion matches
		// however the store was originally built (which may differ from
		// the profile defaults).
		st, err = store.Open(*dir, g, store.OpenOptions{
			Engine:      engOpts,
			Parallelism: *parallel,
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		log.Printf("building %s dataset: %d trajectories, %d shards (%s)", p.Name, *n, *shards, assignment)
		ds, err := gen.Build(p, *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		g = ds.Graph
		if *clusterNodes > 0 {
			// Cluster member: keep only the trajectories the shared placement
			// assigns this node.  Global id order is preserved, so a member's
			// local id k is the k-th global id it owns — exactly the map the
			// router (cmd/utcqr) rebuilds at sync.
			if *clusterNode < 0 || *clusterNode >= *clusterNodes {
				log.Fatalf("-cluster-node %d out of range [0, %d)", *clusterNode, *clusterNodes)
			}
			place := cluster.NewPlacement(cluster.NodeNames(*clusterNodes), *clusterPartitions, 0)
			kept := ds.Trajectories[:0]
			for gid, tu := range ds.Trajectories {
				if place.Owner(gid) == *clusterNode {
					kept = append(kept, tu)
				}
			}
			log.Printf("cluster member %d of %d: placement keeps %d of %d trajectories", *clusterNode, *clusterNodes, len(kept), len(ds.Trajectories))
			ds.Trajectories = kept
		}
		opts := store.DefaultOptions(p.Ts)
		opts.NumShards = *shards
		opts.Assignment = assignment
		opts.Engine = engOpts
		opts.Parallelism = *parallel
		st, err = store.Build(ds.Graph, ds.Trajectories, opts)
		if err != nil {
			log.Fatal(err)
		}
		if *dir != "" {
			if err := st.Save(*dir); err != nil {
				log.Fatal(err)
			}
			log.Printf("saved store to %s", *dir)
		}
	}

	var ing *ingest.Ingester
	if *wal != "" {
		eix := roadnet.NewEdgeIndex(g, 4*p.Network.Spacing)
		ing, err = ingest.New(st, eix, *wal, ingest.Options{
			BatchSize:    *ingestBatch,
			FlushEvery:   *flushEvery,
			Match:        p.Match,
			Parallelism:  *parallel,
			CompactEvery: *compactAfter,
			SimplifyEps:  *simplifyEps,
		})
		if err != nil {
			log.Fatal(err)
		}
		if pending := ing.Pending(); pending > 0 {
			log.Printf("WAL replay: %d acknowledged records pending re-ingestion", pending)
		}
		ing.Start()
		log.Printf("ingestion enabled: WAL %s, batch %d, compact after %d delta shards, simplify eps %g", *wal, *ingestBatch, *compactAfter, *simplifyEps)
	}

	lo, hi := st.TimeSpan()
	log.Printf("serving %d trajectories in %d shards (generation %d), time span [%d, %d]",
		st.NumTrajectories(), st.NumShards(), st.Generation(), lo, hi)

	srv := server.New(st, server.Options{
		MaxBatch:         *maxBatch,
		BatchParallelism: *parallel,
		QueryTimeout:     *queryTimeout,
		MaxPending:       *maxPending,
		Ingester:         ing,
	})
	serveUntilSignal(srv, *addr, *drain, func() {
		if ing != nil {
			// A failed final drain is reported, not fatal: the records it
			// could not apply are still durable in the WAL and replay on
			// the next start, so exiting 0 with a warning beats turning a
			// clean shutdown into a crash.
			if err := ing.Close(); err != nil {
				log.Printf("warning: ingest drain: %v (acknowledged records remain in the WAL and replay on restart)", err)
			} else {
				log.Printf("ingestion drained")
			}
		}
	})
}

// serveUntilSignal runs the server until SIGINT/SIGTERM, drains in-flight
// requests within the budget, then runs cleanup (WAL drain, follower
// shutdown).
func serveUntilSignal(srv *server.Server, addr string, drain time.Duration, cleanup func()) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		done <- srv.ListenAndServe(addr)
	}()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutting down (drain %s)", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			log.Fatal(err)
		}
		cleanup()
		log.Printf("bye")
	}
}

// manifestExists reports whether dir already holds a store manifest.
func manifestExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, store.ManifestName))
	return err == nil
}

// roadnetFor regenerates the profile's deterministic road network without
// synthesizing trajectories (opening a store needs only the graph).
func roadnetFor(p gen.Profile) *roadnet.Graph {
	return roadnet.Generate(p.Network)
}
