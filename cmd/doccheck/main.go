// Command doccheck validates the repository's markdown documentation:
// relative links must resolve to existing files, anchor fragments must
// match a heading in the target document, and heading levels must not
// skip (an h3 directly under an h1 is almost always an editing mistake).
//
// CI's docs job runs it over docs/*.md and README.md; it exits non-zero
// with one line per problem.
//
// Usage:
//
//	doccheck FILE.md...
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images and
// reference-style links are out of scope for this repository.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

// doc is one parsed markdown file.
type doc struct {
	path     string
	anchors  map[string]bool
	links    []link
	problems []string
}

type link struct {
	line   int
	target string
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md...")
		os.Exit(2)
	}
	docs := make(map[string]*doc) // absolute path -> parsed doc
	var order []*doc
	for _, arg := range os.Args[1:] {
		d, err := parse(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		docs[abs] = d
		order = append(order, d)
	}

	failed := false
	for _, d := range order {
		for _, p := range d.problems {
			fmt.Printf("%s: %s\n", d.path, p)
			failed = true
		}
		for _, l := range d.links {
			if p := checkLink(d, l, docs); p != "" {
				fmt.Printf("%s:%d: %s\n", d.path, l.line, p)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d files ok\n", len(order))
}

// parse extracts headings (as anchors), links and heading-level problems,
// skipping fenced code blocks.
func parse(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := &doc{path: path, anchors: map[string]bool{}}
	inFence := false
	prevLevel := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRe.FindStringSubmatch(line); m != nil {
			level := len(m[1])
			if prevLevel > 0 && level > prevLevel+1 {
				d.problems = append(d.problems,
					fmt.Sprintf("line %d: heading level jumps from h%d to h%d (%q)", i+1, prevLevel, level, m[2]))
			}
			prevLevel = level
			d.anchors[slugify(m[2])] = true
		}
		for _, lm := range linkRe.FindAllStringSubmatch(line, -1) {
			d.links = append(d.links, link{line: i + 1, target: lm[1]})
		}
	}
	return d, nil
}

// checkLink validates one link target; empty string means ok.
func checkLink(d *doc, l link, docs map[string]*doc) string {
	t := l.target
	switch {
	case strings.HasPrefix(t, "http://"), strings.HasPrefix(t, "https://"),
		strings.HasPrefix(t, "mailto:"):
		return "" // external: existence not checked offline
	case strings.HasPrefix(t, "#"):
		if !d.anchors[strings.TrimPrefix(t, "#")] {
			return fmt.Sprintf("broken intra-doc anchor %q", t)
		}
		return ""
	}
	file, frag, _ := strings.Cut(t, "#")
	abs, err := filepath.Abs(filepath.Join(filepath.Dir(d.path), file))
	if err != nil {
		return err.Error()
	}
	if _, err := os.Stat(abs); err != nil {
		return fmt.Sprintf("broken link %q: target does not exist", t)
	}
	if frag != "" {
		target, ok := docs[abs]
		if !ok {
			// Linked file was not among the checked set; parse it now so
			// fragments are still verified.
			target, err = parse(abs)
			if err != nil {
				return err.Error()
			}
			docs[abs] = target
		}
		if !target.anchors[frag] {
			return fmt.Sprintf("broken anchor %q: no such heading in %s", t, file)
		}
	}
	return ""
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// drop everything but letters, digits, spaces and hyphens, then replace
// spaces with hyphens.
func slugify(h string) string {
	// Strip inline code/emphasis markers and trailing link syntax first.
	h = strings.NewReplacer("`", "", "*", "", "_", "").Replace(h)
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
