// Command utcq is a small CLI around the library: it generates a synthetic
// dataset, compresses it with UTCQ and the TED baseline, reports the
// compression statistics, answers a few sample queries, and load-tests a
// running utcqd server.
//
// Usage:
//
//	utcq -profile CD -n 500 stats      # dataset + network statistics
//	utcq -profile HZ -n 300 compress   # UTCQ vs TED compression report
//	utcq -profile DK -n 200 query      # sample where/when/range queries
//	utcq -addr http://localhost:8723 -duration 10s loadgen
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"utcq"
	"utcq/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("utcq: ")
	profile := flag.String("profile", "CD", "dataset profile: DK, CD or HZ")
	n := flag.Int("n", 300, "number of uncertain trajectories")
	seed := flag.Int64("seed", 1, "generation seed")
	pivots := flag.Int("pivots", 1, "number of pivots for reference selection")
	parallel := flag.Int("parallel", 0, "compression/index worker count (0 = one per CPU, 1 = serial)")
	cacheEntries := flag.Int("cache", 0, "query engine cache budget in entries per cache (0 = default)")
	addr := flag.String("addr", "http://localhost:8723", "utcqd base URL (loadgen)")
	duration := flag.Duration("duration", 10*time.Second, "load-generation run time (loadgen)")
	workers := flag.Int("workers", 8, "concurrent load-generation workers (loadgen)")
	watchers := flag.Int("watchers", 0, "live /v1/watch/range subscribers held alongside the query load (loadgen)")
	alpha := flag.Float64("alpha", 0.2, "probability threshold for generated queries (loadgen)")
	batch := flag.Int("batch", 1, "queries per request; >1 uses /v1/batch (loadgen)")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "compress"
	}

	if cmd == "loadgen" {
		err := runLoadgen(loadgenConfig{
			addr:     *addr,
			duration: *duration,
			workers:  *workers,
			watchers: *watchers,
			alpha:    *alpha,
			batch:    *batch,
			seed:     *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	p, err := gen.ProfileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := utcq.BuildDataset(p, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "stats":
		s := ds.Stats()
		ns := ds.NetStats()
		fmt.Printf("dataset %s: %d trajectories, %.1f instances avg (%d-%d), %.1f edges avg, Ts=%ds\n",
			s.Name, s.NumTrajectories, s.InstAvg, s.InstMin, s.InstMax, s.EdgesAvg, s.Ts)
		fmt.Printf("raw NCUT size: %.2f MB\n", float64(s.RawBits.Total())/8/1e6)
		fmt.Printf("network: %d vertices, %d segments, avg out-degree %.3f\n",
			ns.Vertices, ns.Segments, ns.AvgOutDegree)

	case "compress":
		opts := utcq.DefaultOptions(p.Ts)
		opts.NumPivots = *pivots
		opts.Parallelism = *parallel
		arch, err := utcq.Compress(ds.Graph, ds.Trajectories, opts)
		if err != nil {
			log.Fatal(err)
		}
		ta, err := utcq.CompressTED(ds.Graph, ds.Trajectories, utcq.DefaultTEDOptions(p.Ts))
		if err != nil {
			log.Fatal(err)
		}
		u, t := arch.Stats, ta.Stats
		fmt.Printf("%-5s %8s %8s %8s %8s %8s %8s\n", "algo", "total", "T", "E", "D", "T'", "p")
		fmt.Printf("%-5s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			"UTCQ", u.TotalRatio(), u.RatioT(), u.RatioE(), u.RatioD(), u.RatioTF(), u.RatioP())
		fmt.Printf("%-5s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			"TED", t.TotalRatio(), t.RatioT(), t.RatioE(), t.RatioD(), t.RatioTF(), t.RatioP())
		fmt.Printf("UTCQ: %d instances, %d references\n", u.NumInstances, u.NumReferences)

	case "query":
		opts := utcq.DefaultOptions(p.Ts)
		opts.Parallelism = *parallel
		arch, err := utcq.Compress(ds.Graph, ds.Trajectories, opts)
		if err != nil {
			log.Fatal(err)
		}
		iopts := utcq.DefaultIndexOptions()
		iopts.Parallelism = *parallel
		idx, err := utcq.BuildIndex(arch, iopts)
		if err != nil {
			log.Fatal(err)
		}
		eng := utcq.NewEngineWithOptions(arch, idx, utcq.EngineOptions{CacheEntries: *cacheEntries})
		u := ds.Trajectories[0]
		tq := (u.T[0] + u.T[len(u.T)-1]) / 2
		res, err := eng.Where(0, tq, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("where(Tu0, %d, 0.2): %d locations\n", tq, len(res))
		for _, r := range res {
			x, y := ds.Graph.Coords(r.Loc)
			fmt.Printf("  instance %d (p=%.3f): edge %d @ %.1fm (%.0f, %.0f)\n",
				r.Inst, r.P, r.Loc.Edge, r.Loc.NDist, x, y)
		}
		if len(res) > 0 {
			wr, err := eng.When(0, res[0].Loc, 0.2)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("when(Tu0, that location, 0.2): %d passages\n", len(wr))
			for _, r := range wr {
				fmt.Printf("  instance %d (p=%.3f): t=%d\n", r.Inst, r.P, r.T)
			}
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown command %q (want stats, compress, query or loadgen)\n", cmd)
		os.Exit(2)
	}
}
