package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"utcq/pkg/client"
)

// loadgenConfig drives the load-generator mode: a closed-loop pool of
// workers firing a where/when/range mix at a running utcqd (or a utcqr
// router — the wire API is identical, so pointing -addr at a router
// load-tests the whole cluster).
type loadgenConfig struct {
	addr     string
	duration time.Duration
	workers  int
	watchers int // live /v1/watch/range subscribers held alongside the query load
	alpha    float64
	batch    int // queries per request; 1 uses the single-query endpoints
	seed     int64
}

// loadgenResult aggregates one worker pool run.
type loadgenResult struct {
	requests  int64
	queries   int64
	failures  int64
	retries   int64           // transient failures recovered by backoff
	giveups   int64           // requests abandoned after the retry budget
	latencies []time.Duration // per request, pooled across workers
	elapsed   time.Duration
}

// retryCounters aggregate the pool's backoff activity: retries is every
// re-sent request, giveups every request abandoned with its budget spent.
type retryCounters struct {
	retries atomic.Int64
	giveups atomic.Int64
}

// Retry policy for transient failures, enforced by pkg/client: a server
// shedding load (429), in transient degradation (5xx) or dropping
// connections gets a bounded number of re-sends with capped exponential
// backoff and jitter, so a blip degrades throughput instead of inflating
// the failure count — and a thundering herd of synchronized workers
// cannot form.
const (
	retryAttempts = 5
	retryBase     = 50 * time.Millisecond
	retryCap      = 2 * time.Second
)

// newLoadgenClient builds the shared API client: the pool's retry policy
// plus an OnRetry hook feeding the backoff counters.
func newLoadgenClient(addr string, rc *retryCounters) *client.Client {
	return client.New(addr, client.Options{
		HTTPClient:    &http.Client{Timeout: 30 * time.Second},
		RetryAttempts: retryAttempts,
		RetryBase:     retryBase,
		RetryCap:      retryCap,
		OnRetry: func(attempt int, err error, delay time.Duration) {
			rc.retries.Add(1)
		},
	})
}

// runLoadgen discovers the served dataset's shape from /v1/stats, then
// drives the query mix for the configured duration and prints a latency
// report.
func runLoadgen(cfg loadgenConfig) error {
	var rc retryCounters
	c := newLoadgenClient(cfg.addr, &rc)
	ctx := context.Background()
	stats, err := fetchStats(ctx, c, cfg.addr)
	if err != nil {
		return fmt.Errorf("fetch /v1/stats (is utcqd running at %s?): %w", cfg.addr, err)
	}
	if stats.Trajectories == 0 {
		return fmt.Errorf("server at %s serves no trajectories", cfg.addr)
	}
	fmt.Printf("target %s: %d trajectories, %d shards (%s), span [%d, %d]\n",
		cfg.addr, stats.Trajectories, stats.Shards, stats.Assignment, stats.TimeMin, stats.TimeMax)
	if stats.Cluster != nil {
		fmt.Printf("cluster: %d nodes, %d partitions, %d holes\n",
			len(stats.Cluster.Nodes), stats.Cluster.Partitions, stats.Cluster.Holes)
		if cfg.watchers > 0 {
			// Routers answer /v1/watch/range with 501 unsupported; holding
			// watchers against one would only log errors.
			fmt.Printf("note: watch subscriptions are not routed; dropping -watchers (subscribe to a member node directly)\n")
			cfg.watchers = 0
		}
	}

	var (
		requests atomic.Int64
		queries  atomic.Int64
		failures atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
	)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	mem := newMemSampler(c, cfg.addr)
	defer mem.stop()
	var ws watcherStats
	var wwg sync.WaitGroup
	for w := 0; w < cfg.watchers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			runWatcher(cfg, stats, rand.New(rand.NewSource(cfg.seed+int64(1000+w))), deadline, &ws)
		}(w)
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			var local []time.Duration
			var lastLoc *client.Position
			for time.Now().Before(deadline) {
				t0 := time.Now()
				n, failed, loc, err := fireOne(ctx, c, cfg, stats, rng, lastLoc, &rc)
				lat := time.Since(t0)
				requests.Add(1)
				queries.Add(int64(n))
				switch {
				case err != nil:
					failures.Add(int64(n)) // whole request failed
					if errors.Is(err, client.ErrRetriesExhausted) {
						rc.giveups.Add(1)
					}
				default:
					failures.Add(int64(failed)) // in-band batch failures
					local = append(local, lat)
					if loc != nil {
						lastLoc = loc
					}
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	wwg.Wait()
	res := loadgenResult{
		requests:  requests.Load(),
		queries:   queries.Load(),
		failures:  failures.Load(),
		retries:   rc.retries.Load(),
		giveups:   rc.giveups.Load(),
		latencies: lats,
		elapsed:   time.Since(start),
	}
	printLoadgenReport(res)
	if cfg.watchers > 0 {
		fmt.Printf("watchers: %d subscriptions — %d updates (%d trajectories delivered), %d heartbeats, %d errors\n",
			cfg.watchers, ws.updates.Load(), ws.trajs.Load(), ws.heartbeats.Load(), ws.errors.Load())
	}
	mem.stop()

	after, err := fetchStats(ctx, c, cfg.addr)
	if err != nil {
		fmt.Printf("warning: post-run /v1/stats fetch failed: %v\n", err)
		return nil
	}
	mem.observe(after)
	e := after.Engine
	fmt.Printf("server counters: %d requests, %d failures, cache %.1f%% hit (%d hits / %d misses), %d paths decoded\n",
		after.Requests, after.Failures,
		100*float64(e.CacheHits)/float64(max(e.CacheHits+e.CacheMisses, 1)),
		e.CacheHits, e.CacheMisses, e.PathsDecoded)
	fmt.Printf("server memory: peak RSS %s, peak mapped %s, sidecars %d loaded / %d rebuilt\n",
		fmtBytes(mem.peakRSS.Load()), fmtBytes(mem.peakMapped.Load()),
		after.SidecarLoads, after.SidecarRebuilds)
	sx := after.Succinct
	fmt.Printf("succinct index: %d region blocks decoded, %d probes pruned without touch, %d temporal sections forced, %s resident\n",
		sx.RegionBlocksDecoded, sx.RegionPrunedNoTouch, sx.TemporalSectionsForced,
		fmtBytes(sx.SuccinctBytes))
	if after.Ingest != nil {
		fmt.Printf("ingest counters: %d acked, %d applied (%d pending), %d matched / %d dropped, %d compactions, generation %d\n",
			after.Ingest.Acked, after.Ingest.Applied, after.Ingest.Pending,
			after.Ingest.Matched, after.Ingest.Dropped, after.Ingest.Compactions, after.Generation)
	}
	return nil
}

// fireOne issues one request (a single query, or a batch when cfg.batch >
// 1) and returns the number of queries it carried, how many of them the
// server failed in-band, and a visited location to seed future
// when-queries.
func fireOne(ctx context.Context, c *client.Client, cfg loadgenConfig, stats *client.StatsResponse, rng *rand.Rand, lastLoc *client.Position, rc *retryCounters) (n, failed int, loc *client.Position, err error) {
	if cfg.batch > 1 {
		var qs []client.BatchQuery
		for i := 0; i < cfg.batch; i++ {
			qs = append(qs, randomQuery(cfg, stats, rng, lastLoc))
		}
		results, err := c.Batch(ctx, client.BatchRequest{Queries: qs})
		if err != nil {
			return cfg.batch, 0, nil, err
		}
		for _, r := range results {
			if r.Error != "" {
				failed++
			}
		}
		return cfg.batch, failed, firstLocation(results), nil
	}
	q := randomQuery(cfg, stats, rng, lastLoc)
	switch q.Kind {
	case "where":
		results, err := c.Where(ctx, *q.Where)
		if err != nil {
			return 1, 0, nil, err
		}
		if len(results) > 0 {
			r := results[rng.Intn(len(results))]
			return 1, 0, &client.Position{Edge: r.Edge, NDist: r.NDist}, nil
		}
		return 1, 0, nil, nil
	case "when":
		_, err := c.When(ctx, *q.When)
		return 1, 0, nil, err
	default:
		_, err := c.Range(ctx, *q.Range)
		return 1, 0, nil, err
	}
}

// watcherStats aggregates the watcher pool: updates is every non-heartbeat
// watch response (a generation the subscriber had not seen), trajs the
// trajectories those updates delivered, heartbeats the empty poll windows.
type watcherStats struct {
	updates    atomic.Int64
	trajs      atomic.Int64
	heartbeats atomic.Int64
	errors     atomic.Int64
}

// runWatcher holds one live /v1/watch/range subscription until the
// deadline: an initial full-set exchange, then incremental long-polls
// resumed with the last update's {gen, cursor} — client.Watcher keeps
// that cursor.  Transient failures (a server shedding load or restarting
// mid-run) are retried inside the client and, past its budget, surface
// here where the loop resubscribes from the same cursor — the watch
// protocol is stateless server-side, so nothing is lost.
func runWatcher(cfg loadgenConfig, stats *client.StatsResponse, rng *rand.Rand, deadline time.Time, ws *watcherStats) {
	// One fixed district per watcher, 20-60% of each axis.
	b := stats.Bounds
	w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
	fw, fh := 0.2+rng.Float64()*0.4, 0.2+rng.Float64()*0.4
	x := b.MinX + rng.Float64()*(1-fw)*w
	y := b.MinY + rng.Float64()*(1-fh)*h
	span := stats.TimeMax - stats.TimeMin
	if span < 1 {
		span = 1
	}
	t := stats.TimeMin + rng.Int63n(span)

	// Watchers get their own client: short poll windows keep the loop
	// responsive to the run deadline, and the transport timeout sits above
	// the window so held polls are not cut off.
	c := client.New(cfg.addr, client.Options{
		HTTPClient:    &http.Client{Timeout: 10 * time.Second},
		RetryAttempts: retryAttempts,
		RetryBase:     retryBase,
		RetryCap:      retryCap,
	})
	watcher := c.Watch(client.WatchRequest{
		Rect:        client.Rect{MinX: x, MinY: y, MaxX: x + fw*w, MaxY: y + fh*h},
		T:           t,
		Alpha:       cfg.alpha,
		PollSeconds: 2,
	})
	var lastGen uint64
	subscribed := false
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		upd, err := watcher.Next(ctx)
		cancel()
		if err != nil {
			if !time.Now().Before(deadline) {
				return // run deadline reached mid-poll
			}
			ws.errors.Add(1)
			var ae *client.APIError
			if errors.As(err, &ae) && !ae.Temporary() {
				return // the subscription itself is wrong; retrying reproduces it
			}
			time.Sleep(retryBase + time.Duration(rng.Int63n(int64(retryBase))))
			continue
		}
		if !subscribed || upd.Gen > lastGen {
			ws.updates.Add(1)
			ws.trajs.Add(int64(len(upd.Added)))
		} else {
			ws.heartbeats.Add(1)
		}
		lastGen, subscribed = upd.Gen, true
	}
}

// randomQuery synthesizes one query against the served dataset: where and
// range uniformly over the time span and network bounds, when at the last
// location a where-query returned (falling back to where until one exists).
func randomQuery(cfg loadgenConfig, stats *client.StatsResponse, rng *rand.Rand, lastLoc *client.Position) client.BatchQuery {
	span := stats.TimeMax - stats.TimeMin
	if span < 1 {
		span = 1
	}
	t := stats.TimeMin + rng.Int63n(span)
	switch k := rng.Float64(); {
	case k < 0.5: // where
		return client.BatchQuery{Kind: "where", Where: &client.WhereRequest{
			Traj: rng.Intn(stats.Trajectories), T: t, Alpha: cfg.alpha,
		}}
	case k < 0.75 && lastLoc != nil: // when
		return client.BatchQuery{Kind: "when", When: &client.WhenRequest{
			Traj: rng.Intn(stats.Trajectories), Loc: *lastLoc, Alpha: cfg.alpha,
		}}
	case k < 0.75: // no visited location yet: fall back to where
		return client.BatchQuery{Kind: "where", Where: &client.WhereRequest{
			Traj: rng.Intn(stats.Trajectories), T: t, Alpha: cfg.alpha,
		}}
	default: // range over 5-40% of each axis
		b := stats.Bounds
		w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
		fw, fh := 0.05+rng.Float64()*0.35, 0.05+rng.Float64()*0.35
		x := b.MinX + rng.Float64()*(1-fw)*w
		y := b.MinY + rng.Float64()*(1-fh)*h
		return client.BatchQuery{Kind: "range", Range: &client.RangeRequest{
			Rect: client.Rect{MinX: x, MinY: y, MaxX: x + fw*w, MaxY: y + fh*h},
			T:    t, Alpha: cfg.alpha,
		}}
	}
}

// memSampler polls /v1/stats in the background during a run and keeps the
// peak RSS and mapped-bytes gauges, so the report shows the memory cost
// of serving the workload (with mmap most of it is evictable page cache).
type memSampler struct {
	peakRSS    atomic.Int64
	peakMapped atomic.Int64
	done       chan struct{}
	once       sync.Once
}

func newMemSampler(c *client.Client, addr string) *memSampler {
	ms := &memSampler{done: make(chan struct{})}
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ms.done:
				return
			case <-tick.C:
				if st, err := fetchStats(context.Background(), c, addr); err == nil {
					ms.observe(st)
				}
			}
		}
	}()
	return ms
}

func (ms *memSampler) observe(st *client.StatsResponse) {
	if st.RSSBytes > ms.peakRSS.Load() {
		ms.peakRSS.Store(st.RSSBytes)
	}
	if st.MappedBytes > ms.peakMapped.Load() {
		ms.peakMapped.Store(st.MappedBytes)
	}
}

func (ms *memSampler) stop() { ms.once.Do(func() { close(ms.done) }) }

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func firstLocation(results []client.BatchResult) *client.Position {
	for _, r := range results {
		if len(r.Where) > 0 {
			return &client.Position{Edge: r.Where[0].Edge, NDist: r.Where[0].NDist}
		}
	}
	return nil
}

// fetchStats discovers the served dataset's shape.  Every failure mode is
// surfaced explicitly — a server-side error (whose envelope code the
// client decodes), a malformed payload, or a degenerate shape — because
// silently proceeding would synthesize queries from zero-valued bounds
// and report nonsense throughput against them.
func fetchStats(ctx context.Context, c *client.Client, addr string) (*client.StatsResponse, error) {
	sr, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s/v1/stats: %w", addr, err)
	}
	// <= also rejects the all-zero bounds a non-utcqd endpoint's unrelated
	// JSON decodes to (a real network always has positive extent).
	if sr.Bounds.MaxX <= sr.Bounds.MinX || sr.Bounds.MaxY <= sr.Bounds.MinY {
		return nil, fmt.Errorf("%s/v1/stats: degenerate network bounds %+v", addr, sr.Bounds)
	}
	return &sr, nil
}

func printLoadgenReport(res loadgenResult) {
	secs := res.elapsed.Seconds()
	fmt.Printf("done: %d requests (%d queries) in %.1fs — %.0f req/s, %.0f queries/s, %d failures\n",
		res.requests, res.queries, secs,
		float64(res.requests)/secs, float64(res.queries)/secs, res.failures)
	if res.retries > 0 || res.giveups > 0 {
		fmt.Printf("backoff: %d retries, %d requests given up after %d attempts\n",
			res.retries, res.giveups, retryAttempts)
	}
	if len(res.latencies) == 0 {
		return
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(res.latencies)-1))
		return res.latencies[i]
	}
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), res.latencies[len(res.latencies)-1].Round(time.Microsecond))
}
