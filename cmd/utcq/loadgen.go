package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"utcq/internal/server"
)

// loadgenConfig drives the load-generator mode: a closed-loop pool of
// workers firing a where/when/range mix at a running utcqd.
type loadgenConfig struct {
	addr     string
	duration time.Duration
	workers  int
	watchers int // live /v1/watch/range subscribers held alongside the query load
	alpha    float64
	batch    int // queries per request; 1 uses the single-query endpoints
	seed     int64
}

// loadgenResult aggregates one worker pool run.
type loadgenResult struct {
	requests  int64
	queries   int64
	failures  int64
	retries   int64           // transient failures recovered by backoff
	giveups   int64           // requests abandoned after the retry budget
	latencies []time.Duration // per request, pooled across workers
	elapsed   time.Duration
}

// retryCounters aggregate the pool's backoff activity: retries is every
// re-sent request, giveups every request abandoned with its budget spent.
type retryCounters struct {
	retries atomic.Int64
	giveups atomic.Int64
}

// Retry policy for transient failures: a server shedding load (429), in
// transient degradation (5xx) or dropping connections gets a bounded
// number of re-sends with capped exponential backoff and jitter, so a
// blip degrades throughput instead of inflating the failure count — and
// a thundering herd of synchronized workers cannot form.
const (
	retryAttempts = 5
	retryBase     = 50 * time.Millisecond
	retryCap      = 2 * time.Second
)

// retryableStatus reports whether an HTTP status is worth re-sending:
// explicit shedding and server-side transients, never other 4xx (the
// request itself is wrong and will fail identically).
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// backoffDelay returns the attempt's sleep: exponential from retryBase,
// capped, with uniform jitter in [delay/2, delay).  A server-provided
// Retry-After (whole seconds) takes precedence when longer.
func backoffDelay(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	delay := retryBase << attempt
	if delay > retryCap {
		delay = retryCap
	}
	delay = delay/2 + time.Duration(rng.Int63n(int64(delay/2)+1))
	if retryAfter > delay {
		delay = retryAfter
	}
	return delay
}

// runLoadgen discovers the served dataset's shape from /stats, then drives
// the query mix for the configured duration and prints a latency report.
func runLoadgen(cfg loadgenConfig) error {
	stats, err := fetchStats(cfg.addr)
	if err != nil {
		return fmt.Errorf("fetch /stats (is utcqd running at %s?): %w", cfg.addr, err)
	}
	if stats.Trajectories == 0 {
		return fmt.Errorf("server at %s serves no trajectories", cfg.addr)
	}
	fmt.Printf("target %s: %d trajectories, %d shards (%s), span [%d, %d]\n",
		cfg.addr, stats.Trajectories, stats.Shards, stats.Assignment, stats.TimeMin, stats.TimeMax)

	var (
		requests atomic.Int64
		queries  atomic.Int64
		failures atomic.Int64
		rc       retryCounters
		mu       sync.Mutex
		lats     []time.Duration
	)
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	mem := newMemSampler(cfg.addr)
	defer mem.stop()
	var ws watcherStats
	var wwg sync.WaitGroup
	for w := 0; w < cfg.watchers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			runWatcher(cfg, stats, rand.New(rand.NewSource(cfg.seed+int64(1000+w))), deadline, &ws)
		}(w)
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			var local []time.Duration
			var lastLoc *server.PositionJSON
			for time.Now().Before(deadline) {
				t0 := time.Now()
				n, failed, loc, err := fireOne(client, cfg, stats, rng, lastLoc, &rc)
				lat := time.Since(t0)
				requests.Add(1)
				queries.Add(int64(n))
				switch {
				case err != nil:
					failures.Add(int64(n)) // whole request failed
				default:
					failures.Add(int64(failed)) // in-band batch failures
					local = append(local, lat)
					if loc != nil {
						lastLoc = loc
					}
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	wwg.Wait()
	res := loadgenResult{
		requests:  requests.Load(),
		queries:   queries.Load(),
		failures:  failures.Load(),
		retries:   rc.retries.Load(),
		giveups:   rc.giveups.Load(),
		latencies: lats,
		elapsed:   time.Since(start),
	}
	printLoadgenReport(res)
	if cfg.watchers > 0 {
		fmt.Printf("watchers: %d subscriptions — %d updates (%d trajectories delivered), %d heartbeats, %d errors\n",
			cfg.watchers, ws.updates.Load(), ws.trajs.Load(), ws.heartbeats.Load(), ws.errors.Load())
	}
	mem.stop()

	after, err := fetchStats(cfg.addr)
	if err != nil {
		fmt.Printf("warning: post-run /stats fetch failed: %v\n", err)
		return nil
	}
	mem.observe(after)
	e := after.Engine
	fmt.Printf("server counters: %d requests, %d failures, cache %.1f%% hit (%d hits / %d misses), %d paths decoded\n",
		after.Requests, after.Failures,
		100*float64(e.CacheHits)/float64(max(e.CacheHits+e.CacheMisses, 1)),
		e.CacheHits, e.CacheMisses, e.PathsDecoded)
	fmt.Printf("server memory: peak RSS %s, peak mapped %s, sidecars %d loaded / %d rebuilt\n",
		fmtBytes(mem.peakRSS.Load()), fmtBytes(mem.peakMapped.Load()),
		after.SidecarLoads, after.SidecarRebuilds)
	if after.Ingest != nil {
		fmt.Printf("ingest counters: %d acked, %d applied (%d pending), %d matched / %d dropped, %d compactions, generation %d\n",
			after.Ingest.Acked, after.Ingest.Applied, after.Ingest.Pending,
			after.Ingest.Matched, after.Ingest.Dropped, after.Ingest.Compactions, after.Generation)
	}
	return nil
}

// fireOne issues one request (a single query, or a batch when cfg.batch >
// 1) and returns the number of queries it carried, how many of them the
// server failed in-band, and a visited location to seed future
// when-queries.
func fireOne(client *http.Client, cfg loadgenConfig, stats *server.StatsResponse, rng *rand.Rand, lastLoc *server.PositionJSON, rc *retryCounters) (n, failed int, loc *server.PositionJSON, err error) {
	if cfg.batch > 1 {
		req := server.BatchRequest{}
		for i := 0; i < cfg.batch; i++ {
			req.Queries = append(req.Queries, randomQuery(cfg, stats, rng, lastLoc))
		}
		var resp struct {
			Results []server.BatchResult `json:"results"`
		}
		if err := postJSON(client, cfg.addr+"/v1/batch", req, &resp, rng, rc); err != nil {
			return cfg.batch, 0, nil, err
		}
		for _, r := range resp.Results {
			if r.Error != "" {
				failed++
			}
		}
		return cfg.batch, failed, firstLocation(resp.Results), nil
	}
	q := randomQuery(cfg, stats, rng, lastLoc)
	switch q.Kind {
	case "where":
		var resp struct {
			Results []server.WhereResultJSON `json:"results"`
		}
		if err := postJSON(client, cfg.addr+"/v1/where", q.Where, &resp, rng, rc); err != nil {
			return 1, 0, nil, err
		}
		if len(resp.Results) > 0 {
			r := resp.Results[rng.Intn(len(resp.Results))]
			return 1, 0, &server.PositionJSON{Edge: r.Edge, NDist: r.NDist}, nil
		}
		return 1, 0, nil, nil
	case "when":
		var resp struct {
			Results []server.WhenResultJSON `json:"results"`
		}
		return 1, 0, nil, postJSON(client, cfg.addr+"/v1/when", q.When, &resp, rng, rc)
	default:
		var resp struct {
			Trajs []int `json:"trajs"`
		}
		return 1, 0, nil, postJSON(client, cfg.addr+"/v1/range", q.Range, &resp, rng, rc)
	}
}

// watcherStats aggregates the watcher pool: updates is every non-heartbeat
// watch response (a generation the subscriber had not seen), trajs the
// trajectories those updates delivered, heartbeats the empty poll windows.
type watcherStats struct {
	updates    atomic.Int64
	trajs      atomic.Int64
	heartbeats atomic.Int64
	errors     atomic.Int64
}

// runWatcher holds one live /v1/watch/range subscription until the
// deadline: an initial full-set exchange, then incremental long-polls
// resumed with the last update's {gen, cursor}.  Transient failures (a
// server shedding load or restarting mid-run) back off and resubscribe
// from the same cursor — the watch protocol is stateless server-side, so
// nothing is lost.
func runWatcher(cfg loadgenConfig, stats *server.StatsResponse, rng *rand.Rand, deadline time.Time, ws *watcherStats) {
	// One fixed district per watcher, 20-60% of each axis.
	b := stats.Bounds
	w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
	fw, fh := 0.2+rng.Float64()*0.4, 0.2+rng.Float64()*0.4
	x := b.MinX + rng.Float64()*(1-fw)*w
	y := b.MinY + rng.Float64()*(1-fh)*h
	span := stats.TimeMax - stats.TimeMin
	if span < 1 {
		span = 1
	}
	t := stats.TimeMin + rng.Int63n(span)

	// Short poll windows keep the loop responsive to the run deadline; the
	// client timeout sits above the window so held polls are not cut off.
	client := &http.Client{Timeout: 10 * time.Second}
	base := fmt.Sprintf("%s/v1/watch/range?minX=%g&minY=%g&maxX=%g&maxY=%g&t=%d&alpha=%g&timeout=2",
		cfg.addr, x, y, x+fw*w, y+fh*h, t, cfg.alpha)
	var gen uint64
	var cursor uint32
	subscribed := false
	for attempt := 0; time.Now().Before(deadline); {
		url := base
		if subscribed {
			url = fmt.Sprintf("%s&gen=%d&cursor=%d", base, gen, cursor)
		}
		resp, err := client.Get(url)
		if err != nil {
			ws.errors.Add(1)
			time.Sleep(backoffDelay(attempt, 0, rng))
			attempt++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			resp.Body.Close()
			ws.errors.Add(1)
			if !retryableStatus(resp.StatusCode) {
				return // the subscription itself is wrong; retrying reproduces it
			}
			time.Sleep(backoffDelay(attempt, time.Duration(retryAfter)*time.Second, rng))
			attempt++
			continue
		}
		var wr server.WatchResponse
		err = json.NewDecoder(resp.Body).Decode(&wr)
		resp.Body.Close()
		if err != nil {
			ws.errors.Add(1)
			continue
		}
		attempt = 0
		if !subscribed || wr.Gen > gen {
			ws.updates.Add(1)
			ws.trajs.Add(int64(len(wr.Added)))
		} else {
			ws.heartbeats.Add(1)
		}
		gen, cursor, subscribed = wr.Gen, wr.Watermark, true
	}
}

// randomQuery synthesizes one query against the served dataset: where and
// range uniformly over the time span and network bounds, when at the last
// location a where-query returned (falling back to where until one exists).
func randomQuery(cfg loadgenConfig, stats *server.StatsResponse, rng *rand.Rand, lastLoc *server.PositionJSON) server.BatchQuery {
	span := stats.TimeMax - stats.TimeMin
	if span < 1 {
		span = 1
	}
	t := stats.TimeMin + rng.Int63n(span)
	switch k := rng.Float64(); {
	case k < 0.5: // where
		return server.BatchQuery{Kind: "where", Where: &server.WhereRequest{
			Traj: rng.Intn(stats.Trajectories), T: t, Alpha: cfg.alpha,
		}}
	case k < 0.75 && lastLoc != nil: // when
		return server.BatchQuery{Kind: "when", When: &server.WhenRequest{
			Traj: rng.Intn(stats.Trajectories), Loc: *lastLoc, Alpha: cfg.alpha,
		}}
	case k < 0.75: // no visited location yet: fall back to where
		return server.BatchQuery{Kind: "where", Where: &server.WhereRequest{
			Traj: rng.Intn(stats.Trajectories), T: t, Alpha: cfg.alpha,
		}}
	default: // range over 5-40% of each axis
		b := stats.Bounds
		w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
		fw, fh := 0.05+rng.Float64()*0.35, 0.05+rng.Float64()*0.35
		x := b.MinX + rng.Float64()*(1-fw)*w
		y := b.MinY + rng.Float64()*(1-fh)*h
		return server.BatchQuery{Kind: "range", Range: &server.RangeRequest{
			Rect: server.RectJSON{MinX: x, MinY: y, MaxX: x + fw*w, MaxY: y + fh*h},
			T:    t, Alpha: cfg.alpha,
		}}
	}
}

// memSampler polls /stats in the background during a run and keeps the
// peak RSS and mapped-bytes gauges, so the report shows the memory cost
// of serving the workload (with mmap most of it is evictable page cache).
type memSampler struct {
	peakRSS    atomic.Int64
	peakMapped atomic.Int64
	done       chan struct{}
	once       sync.Once
}

func newMemSampler(addr string) *memSampler {
	ms := &memSampler{done: make(chan struct{})}
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ms.done:
				return
			case <-tick.C:
				if st, err := fetchStats(addr); err == nil {
					ms.observe(st)
				}
			}
		}
	}()
	return ms
}

func (ms *memSampler) observe(st *server.StatsResponse) {
	if st.RSSBytes > ms.peakRSS.Load() {
		ms.peakRSS.Store(st.RSSBytes)
	}
	if st.MappedBytes > ms.peakMapped.Load() {
		ms.peakMapped.Store(st.MappedBytes)
	}
}

func (ms *memSampler) stop() { ms.once.Do(func() { close(ms.done) }) }

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func firstLocation(results []server.BatchResult) *server.PositionJSON {
	for _, r := range results {
		if len(r.Where) > 0 {
			return &server.PositionJSON{Edge: r.Where[0].Edge, NDist: r.Where[0].NDist}
		}
	}
	return nil
}

// postJSON round-trips one JSON request with the retry policy above:
// connection-level errors (reset, refused), 429 and 5xx are re-sent with
// backoff until the attempt budget runs out; other statuses fail
// immediately (re-sending a 400 reproduces it).
func postJSON(client *http.Client, url string, body, out any, rng *rand.Rand, rc *retryCounters) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			rc.retries.Add(1)
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			// Transport-level failure (connection reset/refused, timeout):
			// always worth a retry.
			lastErr = err
			if attempt+1 < retryAttempts {
				time.Sleep(backoffDelay(attempt, 0, rng))
			}
			continue
		}
		if resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			return err
		}
		retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		resp.Body.Close()
		lastErr = fmt.Errorf("%s: status %d", url, resp.StatusCode)
		if !retryableStatus(resp.StatusCode) {
			return lastErr
		}
		if attempt+1 < retryAttempts {
			time.Sleep(backoffDelay(attempt, time.Duration(retryAfter)*time.Second, rng))
		}
	}
	rc.giveups.Add(1)
	return fmt.Errorf("giving up after %d attempts: %w", retryAttempts, lastErr)
}

// statsClient bounds the discovery fetches the same way per-query
// requests are bounded, so loadgen cannot hang on an unresponsive server.
var statsClient = &http.Client{Timeout: 30 * time.Second}

// fetchStats discovers the served dataset's shape.  Every failure mode is
// surfaced explicitly — a non-200 status (with the response body, which
// carries the server's error JSON), a malformed payload, or a degenerate
// shape — because silently proceeding would synthesize queries from
// zero-valued bounds and report nonsense throughput against them.
func fetchStats(addr string) (*server.StatsResponse, error) {
	resp, err := statsClient.Get(addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%s/stats: status %d (%s): %s", addr, resp.StatusCode, http.StatusText(resp.StatusCode), strings.TrimSpace(string(snippet)))
	}
	var sr server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("%s/stats: decoding response: %w (is this a utcqd server?)", addr, err)
	}
	// <= also rejects the all-zero bounds a non-utcqd endpoint's unrelated
	// JSON decodes to (a real network always has positive extent).
	if sr.Bounds.MaxX <= sr.Bounds.MinX || sr.Bounds.MaxY <= sr.Bounds.MinY {
		return nil, fmt.Errorf("%s/stats: degenerate network bounds %+v", addr, sr.Bounds)
	}
	return &sr, nil
}

func printLoadgenReport(res loadgenResult) {
	secs := res.elapsed.Seconds()
	fmt.Printf("done: %d requests (%d queries) in %.1fs — %.0f req/s, %.0f queries/s, %d failures\n",
		res.requests, res.queries, secs,
		float64(res.requests)/secs, float64(res.queries)/secs, res.failures)
	if res.retries > 0 || res.giveups > 0 {
		fmt.Printf("backoff: %d retries, %d requests given up after %d attempts\n",
			res.retries, res.giveups, retryAttempts)
	}
	if len(res.latencies) == 0 {
		return
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(res.latencies)-1))
		return res.latencies[i]
	}
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), res.latencies[len(res.latencies)-1].Round(time.Microsecond))
}
