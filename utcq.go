// Package utcq is a Go implementation of "Compression of Uncertain
// Trajectories in Road Networks" (Li, Huang, Chen, Jensen, Pedersen;
// PVLDB 13(7), 2020): the UTCQ framework for compressing network-
// constrained uncertain trajectories and answering probabilistic where,
// when and range queries directly on the compressed data.
//
// The package is a facade over the implementation packages:
//
//   - road networks, grids and shortest paths (roadnet),
//   - trajectory modelling and probabilistic map matching (traj, mapmatch),
//   - synthetic DK/CD/HZ-style datasets (gen),
//   - the UTCQ representor/compressor with referential representation,
//     SIAR and reference selection (core),
//   - the StIU index (stiu) and the query processor (query),
//   - the sharded multi-archive store (store) and its HTTP query
//     service (server), fronted by cmd/utcqd,
//   - the TED baseline (ted) and the experiment harness (exp).
//
// Quick start:
//
//	ds, _ := utcq.BuildDataset(utcq.ProfileCD(), 500, 1)
//	arch, _ := utcq.Compress(ds.Graph, ds.Trajectories, utcq.DefaultOptions(ds.Profile.Ts))
//	idx, _ := utcq.BuildIndex(arch, utcq.DefaultIndexOptions())
//	eng := utcq.NewEngine(arch, idx)
//	results, _ := eng.Where(0, ds.Trajectories[0].T[0]+30, 0.25)
package utcq

import (
	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/ingest"
	"utcq/internal/mapmatch"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/server"
	"utcq/internal/simplify"
	"utcq/internal/stiu"
	"utcq/internal/store"
	"utcq/internal/ted"
	"utcq/internal/traj"
)

// Road network types.
type (
	// Graph is a directed road network with per-vertex ordered out-edges.
	Graph = roadnet.Graph
	// GraphBuilder accumulates vertices and edges.
	GraphBuilder = roadnet.Builder
	// VertexID identifies a road-network vertex.
	VertexID = roadnet.VertexID
	// EdgeID identifies a directed edge.
	EdgeID = roadnet.EdgeID
	// Position is a network-constrained location on an edge.
	Position = roadnet.Position
	// Rect is an axis-aligned query rectangle.
	Rect = roadnet.Rect
	// NetworkGenConfig controls synthetic road-network generation.
	NetworkGenConfig = roadnet.GenConfig
	// EdgeIndex is a spatial index over a network's edges (nearest-edge
	// lookups for map matching).
	EdgeIndex = roadnet.EdgeIndex
)

// Trajectory types.
type (
	// RawPoint is one GPS fix (x, y, t).
	RawPoint = traj.RawPoint
	// RawTrajectory is a sequence of raw GPS fixes.
	RawTrajectory = traj.RawTrajectory
	// Instance is one network-constrained trajectory instance in the
	// improved TED representation (SV, E, D, T', p).
	Instance = traj.Instance
	// Uncertain is a network-constrained uncertain trajectory.
	Uncertain = traj.Uncertain
	// MappedLocation is a network location with a timestamp.
	MappedLocation = traj.MappedLocation
)

// Compression types.
type (
	// Options are the UTCQ compression parameters (pivots, ηD, ηp, Ts),
	// plus the Parallelism knob bounding the worker pools of Compress and
	// Decompress (1 = serial, N = N workers, <1 = one per CPU; output is
	// byte-identical across all settings).
	Options = core.Options
	// Archive is a compressed collection of uncertain trajectories.
	Archive = core.Archive
	// CompStats carries raw/compressed sizes per component.
	CompStats = core.CompStats
	// IndexOptions control StIU granularity.
	IndexOptions = stiu.Options
	// Index is the StIU spatio-temporal index.
	Index = stiu.Index
	// Engine answers probabilistic queries over compressed data.  It is
	// safe for concurrent use: one shared engine serves many goroutines
	// with memory bounded by its cache budget.
	Engine = query.Engine
	// EngineOptions configure the engine's bounded sharded LRU caches.
	EngineOptions = query.EngineOptions
	// EngineStats is a snapshot of the engine's work and cache counters.
	EngineStats = query.EngineStats
	// WhereResult is one instance's location at a query time.
	WhereResult = query.WhereResult
	// WhenResult is one instance's passage time at a query location.
	WhenResult = query.WhenResult
	// Oracle answers the same queries on uncompressed data.
	Oracle = query.Oracle
)

// Sharded store and serving types.
type (
	// Store is a sharded multi-archive trajectory store: N independently
	// compressed and indexed shards behind one query surface, with
	// scatter-gather range queries.  Safe for concurrent use.
	Store = store.Store
	// StoreOptions configure a store build (shard count, assignment,
	// compression, index granularity, engine budget).
	StoreOptions = store.Options
	// OpenStoreOptions configure a store opened lazily from disk.
	OpenStoreOptions = store.OpenOptions
	// StoreStats aggregates the engine counters of every open shard.
	StoreStats = store.Stats
	// ShardAssignment selects how trajectories map to shards.
	ShardAssignment = store.Assignment
	// QueryServer serves a store over HTTP/JSON (see internal/server and
	// the README "Serving" section for the endpoint reference).
	QueryServer = server.Server
	// QueryServerOptions configure the HTTP service.
	QueryServerOptions = server.Options
)

// Shard assignment modes.
const (
	// AssignHash spreads trajectories uniformly by hashed id.
	AssignHash = store.AssignHash
	// AssignSpatial co-locates spatially nearby trajectories.
	AssignSpatial = store.AssignSpatial
)

// DefaultStoreOptions returns a 4-shard hash-assigned store configuration
// with the paper's default compression and index parameters.
func DefaultStoreOptions(ts int64) StoreOptions { return store.DefaultOptions(ts) }

// BuildStore compresses and indexes the trajectories into a sharded
// in-memory store; shards build in parallel and the result is identical
// across all parallelism settings.  Persist it with Store.Save.
func BuildStore(g *Graph, tus []*Uncertain, opts StoreOptions) (*Store, error) {
	return store.Build(g, tus, opts)
}

// OpenStore opens a store directory written by Store.Save, attaching the
// road network.  Only the manifest is read up front; each shard loads on
// the first query that touches it (set opts.Eager to load everything now).
func OpenStore(dir string, g *Graph, opts OpenStoreOptions) (*Store, error) {
	return store.Open(dir, g, opts)
}

// NewQueryServer returns an HTTP query service over a store.
func NewQueryServer(st *Store, opts QueryServerOptions) *QueryServer {
	return server.New(st, opts)
}

// Live ingestion types (see internal/ingest).
type (
	// Ingester is the live write path: Submit acknowledges raw
	// trajectories into a CRC-framed write-ahead log; a background worker
	// map-matches and compresses them into delta shards of a mutable
	// store, compacting deltas into base shards past a threshold.
	Ingester = ingest.Ingester
	// IngestOptions configure batching, matching, durability and the
	// compaction threshold.
	IngestOptions = ingest.Options
	// IngestStats is a snapshot of the ingestion pipeline's counters.
	IngestStats = ingest.Stats
	// WAL is the append-only log of raw trajectories with crash-recovery
	// replay.
	WAL = ingest.WAL
	// WALRecord is one replayed WAL entry: the raw trajectory and the
	// simplification error budget (SED ε) it was admitted under.
	WALRecord = ingest.Record
)

// NewIngester opens (or creates) the WAL at walPath and attaches it to the
// store; acknowledged-but-unapplied records are queued for the next drain
// (crash recovery).  The edge index must be built over the store's road
// network (NewEdgeIndex).
func NewIngester(st *Store, ix *EdgeIndex, walPath string, opts IngestOptions) (*Ingester, error) {
	return ingest.New(st, ix, walPath, opts)
}

// NewEdgeIndex builds a spatial edge index with the given cell size in
// meters (used by map matching and ingestion).
func NewEdgeIndex(g *Graph, cellSize float64) *EdgeIndex {
	return roadnet.NewEdgeIndex(g, cellSize)
}

// OpenWAL opens (or creates) a write-ahead log, replaying and returning
// every intact record; a torn tail from a crash mid-append is truncated.
func OpenWAL(path string) (*WAL, []WALRecord, error) {
	return ingest.OpenWAL(path)
}

// Simplify reduces a raw trajectory under the SED error budget eps (map
// units): every dropped point is within eps of the moving position
// interpolated between the kept points bracketing it at its own
// timestamp.  eps <= 0 returns the input unchanged.  This is the same
// reduction IngestOptions.SimplifyEps applies at submission.
func Simplify(raw RawTrajectory, eps float64) RawTrajectory {
	return simplify.Trajectory(raw, eps)
}

// GenerateRaws synthesizes a road network and raw (pre-match) GPS
// trajectories for a profile — the fleet feed for ingestion demos and
// load generation (numRaw 0 uses the profile default).
func GenerateRaws(p Profile, numRaw int, seed int64) (*Graph, *EdgeIndex, []RawTrajectory, error) {
	return gen.Raws(p, numRaw, seed)
}

// Dataset generation and matching types.
type (
	// Profile describes a synthetic dataset family (DK, CD or HZ).
	Profile = gen.Profile
	// Dataset is a generated collection of uncertain trajectories.
	Dataset = gen.Dataset
	// Matcher is the probabilistic HMM map matcher.
	Matcher = mapmatch.Matcher
	// MatchConfig controls probabilistic map matching.
	MatchConfig = mapmatch.Config
)

// TED baseline types.
type (
	// TEDOptions are the baseline's parameters.
	TEDOptions = ted.Options
	// TEDArchive is a TED-compressed dataset.
	TEDArchive = ted.Archive
	// TEDEngine answers queries over the TED baseline.
	TEDEngine = query.TEDEngine
)

// NewGraphBuilder returns an empty road-network builder.
func NewGraphBuilder() *GraphBuilder { return roadnet.NewBuilder() }

// GenerateNetwork builds a synthetic road network.
func GenerateNetwork(cfg NetworkGenConfig) *Graph { return roadnet.Generate(cfg) }

// ProfileDK returns the Denmark-like dataset profile (1 s sampling).
func ProfileDK() Profile { return gen.DK() }

// ProfileCD returns the Chengdu-like dataset profile (10 s sampling).
func ProfileCD() Profile { return gen.CD() }

// ProfileHZ returns the Hangzhou-like dataset profile (20 s sampling).
func ProfileHZ() Profile { return gen.HZ() }

// BuildDataset synthesizes an uncertain-trajectory dataset: routes, noisy
// GPS, and probabilistic map matching (numTraj 0 uses the profile default).
func BuildDataset(p Profile, numTraj int, seed int64) (*Dataset, error) {
	return gen.Build(p, numTraj, seed)
}

// DefaultOptions returns the paper's default compression parameters for a
// dataset with the given default sample interval.
func DefaultOptions(ts int64) Options { return core.DefaultOptions(ts) }

// Compress encodes uncertain trajectories with UTCQ: improved TED
// representation, SIAR temporal encoding, reference selection and
// referential compression.
func Compress(g *Graph, tus []*Uncertain, opts Options) (*Archive, error) {
	c, err := core.NewCompressor(g, opts)
	if err != nil {
		return nil, err
	}
	return c.Compress(tus)
}

// Decompress fully decodes an archive.  Relative distances and
// probabilities are within their error bounds; everything else is exact.
func Decompress(a *Archive) ([]*Uncertain, error) { return a.DecodeAll() }

// DefaultIndexOptions returns the paper's default StIU granularity
// (64×64 grid, 30-minute intervals).
func DefaultIndexOptions() IndexOptions { return stiu.DefaultOptions() }

// BuildIndex constructs the StIU index over an archive.
func BuildIndex(a *Archive, opts IndexOptions) (*Index, error) { return stiu.Build(a, opts) }

// NewEngine returns a query engine over an archive and its index with the
// default cache budget.  The engine is safe for concurrent use.
func NewEngine(a *Archive, ix *Index) *Engine { return query.NewEngine(a, ix) }

// NewEngineWithOptions returns a query engine with an explicit cache
// budget (entry bound and shard count).  The engine is safe for
// concurrent use with memory bounded by the budget.
func NewEngineWithOptions(a *Archive, ix *Index, o EngineOptions) *Engine {
	return query.NewEngineWithOptions(a, ix, o)
}

// DefaultEngineOptions returns the default engine cache budget.
func DefaultEngineOptions() EngineOptions { return query.DefaultEngineOptions() }

// NewOracle returns a query processor over uncompressed trajectories.
func NewOracle(g *Graph, tus []*Uncertain) *Oracle { return query.NewOracle(g, tus) }

// NewMatcher returns a probabilistic map matcher for the network.
func NewMatcher(g *Graph, cfg MatchConfig) *Matcher {
	return mapmatch.New(g, roadnet.NewEdgeIndex(g, 500), cfg)
}

// DefaultMatchConfig returns the matcher defaults.
func DefaultMatchConfig() MatchConfig { return mapmatch.DefaultConfig() }

// CompressTED encodes the dataset with the adapted TED baseline.
func CompressTED(g *Graph, tus []*Uncertain, opts TEDOptions) (*TEDArchive, error) {
	c, err := ted.NewCompressor(g, opts)
	if err != nil {
		return nil, err
	}
	return c.Compress(tus)
}

// DefaultTEDOptions mirrors DefaultOptions for the baseline.
func DefaultTEDOptions(ts int64) TEDOptions { return ted.DefaultOptions(ts) }
