// Shardserve: the full serving pipeline in one file.  Build a dataset,
// compress it into a sharded store, round-trip the store through disk with
// lazy shard opening, verify the store matches a single-archive engine,
// then put an HTTP query service in front of it and talk to it over the
// wire — single queries and a batch — before shutting down gracefully.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"utcq"
	"utcq/internal/server"
)

func main() {
	log.SetFlags(0)

	// 1. A small synthetic dataset (Chengdu-like profile).
	ds, err := utcq.BuildDataset(utcq.ProfileCD(), 80, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d trajectories\n", len(ds.Trajectories))

	// 2. Compress into a 4-shard store.  Shards are independent archives:
	// they build in parallel and each carries its own StIU index and query
	// engine.
	opts := utcq.DefaultStoreOptions(ds.Profile.Ts)
	opts.NumShards = 4
	opts.Assignment = utcq.AssignSpatial
	st, err := utcq.BuildStore(ds.Graph, ds.Trajectories, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Round-trip through disk.  Open reads only the manifest; shards
	// load on first touch.
	dir, err := os.MkdirTemp("", "utcq-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := st.Save(dir); err != nil {
		log.Fatal(err)
	}
	st, err = utcq.OpenStore(dir, ds.Graph, utcq.OpenStoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d shards on disk at %s, %d resident\n",
		st.NumShards(), dir, st.Stats().OpenShards)

	// 4. The store answers exactly like a single-archive engine.
	arch, err := utcq.Compress(ds.Graph, ds.Trajectories, utcq.DefaultOptions(ds.Profile.Ts))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := utcq.BuildIndex(arch, utcq.DefaultIndexOptions())
	if err != nil {
		log.Fatal(err)
	}
	eng := utcq.NewEngine(arch, idx)
	T := ds.Trajectories[0].T
	tq := (T[0] + T[len(T)-1]) / 2
	fromEngine, err := eng.Where(0, tq, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fromStore, err := st.Where(0, tq, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("where(0, %d, 0.2): engine %d results, store %d results (shard %d now resident)\n",
		tq, len(fromEngine), len(fromStore), st.ShardOf(0))

	// 5. Serve it.  utcqd wraps exactly this; here the server runs
	// in-process on a loopback listener.
	srv := utcq.NewQueryServer(st, utcq.QueryServerOptions{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	base := "http://" + l.Addr().String()

	// A single where query over HTTP...
	var whereResp struct {
		Results []server.WhereResultJSON `json:"results"`
	}
	postJSON(base+"/v1/where", server.WhereRequest{Traj: 0, T: tq, Alpha: 0.2}, &whereResp)
	fmt.Printf("HTTP where: %d results", len(whereResp.Results))
	if len(whereResp.Results) > 0 {
		r := whereResp.Results[0]
		fmt.Printf(" — instance %d (p=%.3f) at (%.0f, %.0f)", r.Inst, r.P, r.X, r.Y)
	}
	fmt.Println()

	// ...and a batch mixing all three query kinds.
	b := st.Bounds()
	batch := server.BatchRequest{Queries: []server.BatchQuery{
		{Kind: "where", Where: &server.WhereRequest{Traj: 1, T: tq, Alpha: 0.2}},
		{Kind: "range", Range: &server.RangeRequest{
			Rect: server.RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY},
			T:    tq, Alpha: 0.2,
		}},
	}}
	var batchResp struct {
		Results []server.BatchResult `json:"results"`
	}
	postJSON(base+"/v1/batch", batch, &batchResp)
	fmt.Printf("HTTP batch: %d results, range matched %d trajectories\n",
		len(batchResp.Results), len(batchResp.Results[1].Trajs))

	// 6. /v1/stats shows the aggregated engine counters, then drain and stop.
	var stats server.StatsResponse
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("stats: %d/%d shards open, %d requests, %d paths decoded\n",
		stats.OpenShards, stats.Shards, stats.Requests, stats.Engine.PathsDecoded)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}

func postJSON(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
