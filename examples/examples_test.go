// Build-and-run smoke for the examples: every example must compile, and
// rangemonitor — the streaming demo — must run its full subscribe /
// ingest / verify loop and exit cleanly.  Examples are the first thing a
// reader copies; a broken one is a bug like any other.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var exampleDirs = []string{"fleetarchive", "probewhen", "quickstart", "rangemonitor", "shardserve"}

// buildExample compiles one example into dir and returns the binary path.
func buildExample(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./%s: %v\n%s", name, err, out)
	}
	return bin
}

func TestExamplesBuild(t *testing.T) {
	dir := t.TempDir()
	for _, name := range exampleDirs {
		buildExample(t, dir, name)
	}
}

func TestRangeMonitorSmoke(t *testing.T) {
	bin := buildExample(t, t.TempDir(), "rangemonitor")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, bin).CombinedOutput()
	if err != nil {
		t.Fatalf("rangemonitor: %v\n%s", err, out)
	}
	for _, want := range []string{
		"subscribed at generation",
		"union of 3 incremental updates matches a full requery",
		"online simplification",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("rangemonitor output missing %q:\n%s", want, out)
		}
	}
}
