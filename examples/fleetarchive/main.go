// Fleet archive: the paper's motivating workload — a day of taxi traces is
// map-matched into uncertain trajectories and archived with UTCQ, which is
// compared against the TED baseline on the same data (the Table 8
// scenario as a library user would run it).
package main

import (
	"fmt"
	"log"
	"time"

	"utcq"
)

func main() {
	log.SetFlags(0)

	// A Chengdu-like fleet: 10 s GPS sampling, ~3 plausible routes per
	// ambiguous trace.
	profile := utcq.ProfileCD()
	ds, err := utcq.BuildDataset(profile, 600, 7)
	if err != nil {
		log.Fatal(err)
	}
	s := ds.Stats()
	fmt.Printf("fleet dataset: %d uncertain trajectories, %.1f instances avg, %.2f MB raw\n",
		s.NumTrajectories, s.InstAvg, float64(s.RawBits.Total())/8/1e6)

	// Archive with UTCQ.
	opts := utcq.DefaultOptions(profile.Ts)
	start := time.Now()
	arch, err := utcq.Compress(ds.Graph, ds.Trajectories, opts)
	if err != nil {
		log.Fatal(err)
	}
	utcqTime := time.Since(start)

	// And with the TED baseline for comparison.
	start = time.Now()
	tarch, err := utcq.CompressTED(ds.Graph, ds.Trajectories, utcq.DefaultTEDOptions(profile.Ts))
	if err != nil {
		log.Fatal(err)
	}
	tedTime := time.Since(start)

	u, t := arch.Stats, tarch.Stats
	fmt.Printf("\n%-5s %9s %9s %8s %8s %8s %8s %8s\n", "algo", "size MB", "ratio", "T", "E", "D", "T'", "p")
	fmt.Printf("%-5s %9.3f %9.2f %8.2f %8.2f %8.2f %8.2f %8.2f   (%v)\n",
		"UTCQ", float64(u.CompTotal())/8/1e6, u.TotalRatio(),
		u.RatioT(), u.RatioE(), u.RatioD(), u.RatioTF(), u.RatioP(), utcqTime.Round(time.Millisecond))
	fmt.Printf("%-5s %9.3f %9.2f %8.2f %8.2f %8.2f %8.2f %8.2f   (%v)\n",
		"TED", float64(t.CompTotal())/8/1e6, t.TotalRatio(),
		t.RatioT(), t.RatioE(), t.RatioD(), t.RatioTF(), t.RatioP(), tedTime.Round(time.Millisecond))

	fmt.Printf("\nUTCQ selected %d references for %d instances (%.0f%% stored referentially)\n",
		u.NumReferences, u.NumInstances,
		100*float64(u.NumInstances-u.NumReferences)/float64(u.NumInstances))

	// Verify the archive round-trips before shipping it.
	back, err := utcq.Decompress(arch)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for j, got := range back {
		want := ds.Trajectories[j]
		ok := len(got.Instances) == len(want.Instances)
		for i := 0; ok && i < len(got.Instances); i++ {
			g, w := &got.Instances[i], &want.Instances[i]
			if g.SV != w.SV || len(g.E) != len(w.E) {
				ok = false
			}
		}
		if ok {
			exact++
		}
	}
	fmt.Printf("verified %d/%d trajectories decode with matching paths\n", exact, len(back))
}
