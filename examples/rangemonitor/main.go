// Range monitor, live edition: "which vehicles were probably inside this
// district at time t — and tell me when that changes?"  The monitor runs
// the whole streaming stack in one process: a store with a WAL-backed
// ingester behind the HTTP query server, and a pkg/client Watcher
// subscribed to GET /v1/watch/range.  Each ingested batch advances the
// store's generation; the subscription answers with only the trajectories
// that entered the result set since the client's cursor, and the
// client-side union always equals a full range query at that generation.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"

	"utcq"
	"utcq/pkg/client"
)

func main() {
	log.SetFlags(0)

	// A fleet of raw GPS traces: 12 seed the store, the rest arrive live.
	profile := utcq.ProfileCD()
	g, eix, raws, err := utcq.GenerateRaws(profile, 48, 5)
	if err != nil {
		log.Fatal(err)
	}
	matcher := utcq.NewMatcher(g, profile.Match)
	var base []*utcq.Uncertain
	for _, raw := range raws[:12] {
		if u, err := matcher.Match(raw); err == nil {
			base = append(base, u)
		}
	}
	st, err := utcq.BuildStore(g, base, utcq.DefaultStoreOptions(profile.Ts))
	if err != nil {
		log.Fatal(err)
	}

	// The write path: a WAL-backed ingester with online simplification —
	// a 10 m SED budget (below the profile's GPS noise) trims
	// redundant fixes at admission, before anything reaches the log.
	walDir, err := os.MkdirTemp("", "rangemonitor")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	ing, err := utcq.NewIngester(st, eix, filepath.Join(walDir, "ingest.wal"), utcq.IngestOptions{
		Match:       profile.Match,
		BatchSize:   64,
		SimplifyEps: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ing.Close()

	srv := utcq.NewQueryServer(st, utcq.QueryServerOptions{Ingester: ing})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Shutdown(context.Background())

	// The district: the central two thirds of the network.  The probe
	// time is the instant most fleet traces cover, so the monitor
	// actually sees arrivals.
	b := g.Bounds()
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	half := (b.MaxX - b.MinX) / 3
	tq := busiestInstant(raws)

	ctx := context.Background()
	c := client.New("http://"+l.Addr().String(), client.Options{})
	req := client.WatchRequest{
		Rect:        client.Rect{MinX: cx - half, MinY: cy - half, MaxX: cx + half, MaxY: cy + half},
		T:           tq,
		Alpha:       0.2,
		PollSeconds: 5,
	}

	// Subscribe: the first exchange delivers the full result set; the
	// Watcher keeps the {gen, cursor} resume state from then on.
	watcher := c.Watch(req)
	cur, err := watcher.Next(ctx)
	if err != nil {
		log.Fatal(err)
	}
	inside := map[int]bool{}
	for _, j := range cur.Added {
		inside[j] = true
	}
	fmt.Printf("subscribed at generation %d: %d vehicles inside the district at t=%d\n",
		cur.Gen, len(inside), tq)

	// Live traffic: ingest the remaining traces in batches; after each
	// flush, one incremental long-poll delivers only the new arrivals.
	updates := 0
	for next := 12; next < len(raws); next += 12 {
		end := min(next+12, len(raws))
		for _, raw := range raws[next:end] {
			if _, err := ing.Submit(raw); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := ing.Flush(); err != nil {
			log.Fatal(err)
		}
		upd, err := watcher.Next(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, j := range upd.Added {
			inside[j] = true
		}
		updates++
		fmt.Printf("generation %d: +%d arrivals, %d vehicles inside\n", upd.Gen, len(upd.Added), len(inside))
	}

	// The streaming invariant: the union of incremental updates equals a
	// fresh full subscription at the final generation.
	full, err := c.Watch(req).Next(ctx)
	if err != nil {
		log.Fatal(err)
	}
	want := append([]int(nil), full.Added...)
	have := make([]int, 0, len(inside))
	for j := range inside {
		have = append(have, j)
	}
	sort.Ints(want)
	sort.Ints(have)
	if len(want) != len(have) {
		log.Fatalf("union of updates has %d vehicles, full requery %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			log.Fatalf("union of updates diverged from full requery at %d: %v vs %v", i, have, want)
		}
	}
	fmt.Printf("union of %d incremental updates matches a full requery at generation %d\n", updates, full.Gen)

	is := ing.Stats()
	fmt.Printf("online simplification (eps=%.0f m) kept %d of %d submitted points\n",
		is.SimplifyEps, is.PointsKept, is.PointsIn)
}

// busiestInstant returns the timestamp covered by the most traces, so the
// monitored instant is one where the fleet is actually on the road.
func busiestInstant(raws []utcq.RawTrajectory) int64 {
	best, bestN := int64(0), -1
	for _, cand := range raws {
		t := cand.Points[len(cand.Points)/2].T
		n := 0
		for _, r := range raws {
			if r.Points[0].T <= t && t <= r.Points[len(r.Points)-1].T {
				n++
			}
		}
		if n > bestN {
			best, bestN = t, n
		}
	}
	return best
}
