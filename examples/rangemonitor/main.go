// Range monitor, live edition: "which vehicles were probably inside this
// district at time t — and tell me when that changes?"  The monitor runs
// the whole streaming stack in one process: a store with a WAL-backed
// ingester behind the HTTP query server, and a watch client subscribed
// to GET /v1/watch/range.  Each ingested batch advances the store's
// generation; the subscription answers with only the trajectories that
// entered the result set since the client's cursor, and the client-side
// union always equals a full range query at that generation.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"utcq"
)

// watchUpdate mirrors the /v1/watch/range response payload.
type watchUpdate struct {
	Gen       uint64 `json:"gen"`
	Watermark uint32 `json:"watermark"`
	Added     []int  `json:"added"`
	Reset     bool   `json:"reset"`
}

func main() {
	log.SetFlags(0)

	// A fleet of raw GPS traces: 12 seed the store, the rest arrive live.
	profile := utcq.ProfileCD()
	g, eix, raws, err := utcq.GenerateRaws(profile, 48, 5)
	if err != nil {
		log.Fatal(err)
	}
	matcher := utcq.NewMatcher(g, profile.Match)
	var base []*utcq.Uncertain
	for _, raw := range raws[:12] {
		if u, err := matcher.Match(raw); err == nil {
			base = append(base, u)
		}
	}
	st, err := utcq.BuildStore(g, base, utcq.DefaultStoreOptions(profile.Ts))
	if err != nil {
		log.Fatal(err)
	}

	// The write path: a WAL-backed ingester with online simplification —
	// a 10 m SED budget (below the profile's GPS noise) trims
	// redundant fixes at admission, before anything reaches the log.
	walDir, err := os.MkdirTemp("", "rangemonitor")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	ing, err := utcq.NewIngester(st, eix, filepath.Join(walDir, "ingest.wal"), utcq.IngestOptions{
		Match:       profile.Match,
		BatchSize:   64,
		SimplifyEps: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ing.Close()

	srv := utcq.NewQueryServer(st, utcq.QueryServerOptions{Ingester: ing})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Shutdown(context.Background())
	baseURL := "http://" + l.Addr().String()

	// The district: the central two thirds of the network.  The probe
	// time is the instant most fleet traces cover, so the monitor
	// actually sees arrivals.
	b := g.Bounds()
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	half := (b.MaxX - b.MinX) / 3
	tq := busiestInstant(raws)

	watch := func(extra string) watchUpdate {
		url := fmt.Sprintf("%s/v1/watch/range?minX=%g&minY=%g&maxX=%g&maxY=%g&t=%d&alpha=0.2%s",
			baseURL, cx-half, cy-half, cx+half, cy+half, tq, extra)
		resp, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("watch: HTTP %d", resp.StatusCode)
		}
		var wu watchUpdate
		if err := json.NewDecoder(resp.Body).Decode(&wu); err != nil {
			log.Fatal(err)
		}
		return wu
	}

	// Subscribe: the first exchange delivers the full result set.
	cur := watch("")
	inside := map[int]bool{}
	for _, j := range cur.Added {
		inside[j] = true
	}
	fmt.Printf("subscribed at generation %d: %d vehicles inside the district at t=%d\n",
		cur.Gen, len(inside), tq)

	// Live traffic: ingest the remaining traces in batches; after each
	// flush, one incremental long-poll delivers only the new arrivals.
	updates := 0
	for next := 12; next < len(raws); next += 12 {
		end := min(next+12, len(raws))
		for _, raw := range raws[next:end] {
			if _, err := ing.Submit(raw); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := ing.Flush(); err != nil {
			log.Fatal(err)
		}
		upd := watch(fmt.Sprintf("&gen=%d&cursor=%d&timeout=5", cur.Gen, cur.Watermark))
		for _, j := range upd.Added {
			inside[j] = true
		}
		updates++
		fmt.Printf("generation %d: +%d arrivals, %d vehicles inside\n", upd.Gen, len(upd.Added), len(inside))
		cur = upd
	}

	// The streaming invariant: the union of incremental updates equals a
	// fresh full subscription at the final generation.
	full := watch("")
	want := append([]int(nil), full.Added...)
	have := make([]int, 0, len(inside))
	for j := range inside {
		have = append(have, j)
	}
	sort.Ints(want)
	sort.Ints(have)
	if len(want) != len(have) {
		log.Fatalf("union of updates has %d vehicles, full requery %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			log.Fatalf("union of updates diverged from full requery at %d: %v vs %v", i, have, want)
		}
	}
	fmt.Printf("union of %d incremental updates matches a full requery at generation %d\n", updates, full.Gen)

	is := ing.Stats()
	fmt.Printf("online simplification (eps=%.0f m) kept %d of %d submitted points\n",
		is.SimplifyEps, is.PointsKept, is.PointsIn)
}

// busiestInstant returns the timestamp covered by the most traces, so the
// monitored instant is one where the fleet is actually on the road.
func busiestInstant(raws []utcq.RawTrajectory) int64 {
	best, bestN := int64(0), -1
	for _, cand := range raws {
		t := cand.Points[len(cand.Points)/2].T
		n := 0
		for _, r := range raws {
			if r.Points[0].T <= t && t <= r.Points[len(r.Points)-1].T {
				n++
			}
		}
		if n > bestN {
			best, bestN = t, n
		}
	}
	return best
}
