// Range monitor: "which vehicles were probably inside this district at
// time t?" — the probabilistic range query of Definition 12, with the
// filtering Lemmas 2-4 pruning most of the archive without decompression.
package main

import (
	"fmt"
	"log"
	"time"

	"utcq"
)

func main() {
	log.SetFlags(0)

	profile := utcq.ProfileDK()
	ds, err := utcq.BuildDataset(profile, 400, 5)
	if err != nil {
		log.Fatal(err)
	}
	arch, err := utcq.Compress(ds.Graph, ds.Trajectories, utcq.DefaultOptions(profile.Ts))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := utcq.BuildIndex(arch, utcq.DefaultIndexOptions())
	if err != nil {
		log.Fatal(err)
	}
	eng := utcq.NewEngine(arch, idx)

	// A district: a 1.5 km square in the middle of the network.
	b := ds.Graph.Bounds()
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	district := utcq.Rect{MinX: cx - 750, MinY: cy - 750, MaxX: cx + 750, MaxY: cy + 750}

	// Monitor the district over the day at a few probability thresholds.
	for _, alpha := range []float64{0.3, 0.7} {
		total := 0
		probes := 0
		start := time.Now()
		for tq := int64(7 * 3600); tq < 20*3600; tq += 1800 {
			hits, err := eng.Range(district, tq, alpha)
			if err != nil {
				log.Fatal(err)
			}
			total += len(hits)
			probes++
		}
		fmt.Printf("alpha=%.1f: %d trajectory hits across %d probes (%v)\n",
			alpha, total, probes, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("\npruning: %d trajectories rejected by Lemma 4 without decompression, %d accepted early by Lemma 3\n",
		eng.Stats().TrajsPruned, eng.Stats().TrajsAccepted)
	fmt.Printf("paths decoded in total: %d (of %d instances in the archive)\n",
		eng.Stats().PathsDecoded, arch.Stats.NumInstances)

	// Show one concrete answer.
	tq := int64(12*3600 + 900)
	hits, err := eng.Range(district, tq, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat t=%d, %d vehicles were inside with total probability >= 0.3:", tq, len(hits))
	for _, j := range hits {
		fmt.Printf(" Tu%d", j)
	}
	fmt.Println()
}
