// Quickstart: build a tiny road network by hand, map-match a noisy GPS
// trace into an uncertain trajectory, compress it, and query it — the
// whole UTCQ pipeline in one file.
package main

import (
	"fmt"
	"log"

	"utcq"
)

func main() {
	log.SetFlags(0)

	// A small network: a 1 km main street with a parallel detour, all
	// edges bidirectional.
	b := utcq.NewGraphBuilder()
	var street []utcq.VertexID
	for i := 0; i <= 5; i++ {
		street = append(street, b.AddVertex(float64(i)*200, 0))
	}
	detour := b.AddVertex(500, 80)
	for i := 0; i < 5; i++ {
		b.AddEdge(street[i], street[i+1])
		b.AddEdge(street[i+1], street[i])
	}
	b.AddEdge(street[2], detour)
	b.AddEdge(detour, street[4])
	b.AddEdge(street[4], detour)
	b.AddEdge(detour, street[2])
	g := b.Build()

	// A noisy trace driving down the street.  The middle fix lies between
	// the street and the detour, so probabilistic map matching produces
	// several instances.
	trace := utcq.RawTrajectory{Points: []utcq.RawPoint{
		{X: 90, Y: 4, T: 36000},
		{X: 310, Y: -6, T: 36010},
		{X: 505, Y: 38, T: 36021},
		{X: 700, Y: 5, T: 36030},
		{X: 905, Y: -3, T: 36040},
	}}
	matcher := utcq.NewMatcher(g, utcq.DefaultMatchConfig())
	u, err := matcher.Match(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map matching produced %d instances:\n", len(u.Instances))
	for i := range u.Instances {
		ins := &u.Instances[i]
		fmt.Printf("  instance %d: p=%.3f, E=%v\n", i, ins.P, ins.E)
	}

	// Compress with the paper's defaults (Ts = 10 s for this trace).
	arch, err := utcq.Compress(g, []*utcq.Uncertain{u}, utcq.DefaultOptions(10))
	if err != nil {
		log.Fatal(err)
	}
	s := arch.Stats
	fmt.Printf("\ncompressed %d -> %d bits (ratio %.2f; %d reference(s))\n",
		s.Raw.Total(), s.CompTotal(), s.TotalRatio(), s.NumReferences)

	// Index and query without full decompression.
	idx, err := utcq.BuildIndex(arch, utcq.DefaultIndexOptions())
	if err != nil {
		log.Fatal(err)
	}
	eng := utcq.NewEngine(arch, idx)

	res, err := eng.Where(0, 36015, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhere was the vehicle at t=36015 (alpha=0.05)?\n")
	for _, r := range res {
		x, y := g.Coords(r.Loc)
		fmt.Printf("  instance %d (p=%.3f): (%.0f, %.0f)\n", r.Inst, r.P, x, y)
	}

	// Round trip sanity: decompression reproduces the instances.
	back, err := utcq.Decompress(arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecompressed %d trajectories, %d instances — lossless paths, bounded-error distances\n",
		len(back), len(back[0].Instances))
}
