// Probe when/where: an investigator's workload over an archived fleet —
// "when did vehicle X probably pass this road segment?" and "where was it
// at time t?", answered on compressed data with partial decompression
// (the Section 5.3 probabilistic when/where queries).
package main

import (
	"fmt"
	"log"

	"utcq"
)

func main() {
	log.SetFlags(0)

	profile := utcq.ProfileHZ() // 20 s sampling, many instances per trace
	ds, err := utcq.BuildDataset(profile, 250, 11)
	if err != nil {
		log.Fatal(err)
	}
	arch, err := utcq.Compress(ds.Graph, ds.Trajectories, utcq.DefaultOptions(profile.Ts))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := utcq.BuildIndex(arch, utcq.DefaultIndexOptions())
	if err != nil {
		log.Fatal(err)
	}
	eng := utcq.NewEngine(arch, idx)

	// Pick a vehicle and a segment its most likely route uses.
	vehicle := 3
	u := ds.Trajectories[vehicle]
	best := 0
	for i := range u.Instances {
		if u.Instances[i].P > u.Instances[best].P {
			best = i
		}
	}
	path, err := u.Instances[best].PathEdges(ds.Graph)
	if err != nil {
		log.Fatal(err)
	}
	segment := path[len(path)/2]
	loc := ds.Graph.PositionAtRD(segment, 0.4)

	fmt.Printf("vehicle %d has %d plausible routes; probing edge %d at rd=0.4\n",
		vehicle, len(u.Instances), segment)

	// When did it pass, for increasingly strict probability thresholds?
	for _, alpha := range []float64{0.05, 0.25, 0.5} {
		res, err := eng.When(vehicle, loc, alpha)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  when(alpha=%.2f): %d passages", alpha, len(res))
		for _, r := range res {
			fmt.Printf("  [inst %d p=%.2f t=%d]", r.Inst, r.P, r.T)
		}
		fmt.Println()
	}

	// Where was it midway through its trip?
	tq := (u.T[0] + u.T[len(u.T)-1]) / 2
	res, err := eng.Where(vehicle, tq, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhere(t=%d, alpha=0.1): %d candidate locations\n", tq, len(res))
	for _, r := range res {
		x, y := ds.Graph.Coords(r.Loc)
		fmt.Printf("  instance %d (p=%.2f): edge %d, %.0fm in (%.0f, %.0f)\n",
			r.Inst, r.P, r.Loc.Edge, r.Loc.NDist, x, y)
	}

	// The pruning lemmas at work: Lemma 1 skips reconstructing whole
	// reference groups whose pmax is below alpha.
	fmt.Printf("\nengine work: %d paths decoded, %d instances skipped by filters\n",
		eng.Stats().PathsDecoded, eng.Stats().InstancesSkipped)
}
